//! Sweep-side observability: the per-worker collectors the
//! work-stealing pool fills during an instrumented run, the
//! [`SweepObsReport`] they fold into, and the [`ProgressReporter`] sink
//! that turns the [`SweepEvent`] stream into a throttled live line.
//!
//! The split of responsibilities mirrors the pool's lock discipline:
//! every worker owns its [`WorkerObs`] privately for the whole run (no
//! lock, no atomic, no false sharing on the hot path) and pushes it
//! into the shared collection vector exactly once, at exit. Assembly —
//! merging histograms, naming tracks, computing utilization — happens
//! after the pool has joined, on the calling thread.

use std::sync::Mutex;
use std::time::Instant;

use teem_soc::StepObs;
use teem_telemetry::obs::{
    ArgValue, LogHistogram, MetricsRegistry, MetricsSnapshot, ProgressModel, TraceEventLog,
};
use teem_telemetry::SweepAggregator;

use crate::exec::ScenarioResult;
use crate::journal::JournalIoStats;
use crate::sweep::{SweepEvent, SweepRunStats};

/// Saturating nanoseconds since `t0`.
fn ns_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Work-stealing scheduler counters one worker accumulates inside the
/// pool's `next_cell` claim loop: claim refills, steal traffic, and the
/// injector depth / stolen-range-size distributions.
#[derive(Debug, Default)]
pub struct PoolObs {
    /// Times the worker entered the steal scan (own claim and injector
    /// both empty).
    pub steal_attempts: u64,
    /// Steals that actually took a range from a sibling.
    pub steal_successes: u64,
    /// Fresh chunks popped from the shared injector.
    pub injector_refills: u64,
    /// Size (cells) of each stolen back-half.
    pub steal_sizes: LogHistogram,
    /// Injector queue depth sampled at every refill attempt.
    pub queue_depth: LogHistogram,
}

/// Everything one pool worker observes during an instrumented sweep:
/// cell counts and wall-time histogram, busy/idle split, scheduler
/// counters, the merged step-loop accumulator of every cell it ran, and
/// its own Chrome-trace track.
#[derive(Debug)]
pub struct WorkerObs {
    /// Worker index (also the trace track id).
    pub worker: usize,
    /// The run's shared trace epoch (trace timestamps are relative to
    /// it).
    epoch: Instant,
    /// Cells this worker executed (completed + failed).
    pub cells: u64,
    /// Cells that failed on this worker.
    pub failed: u64,
    /// Nanoseconds spent executing cells.
    pub busy_ns: u64,
    /// Nanoseconds spent claiming/stealing/waiting for work.
    pub idle_ns: u64,
    /// Per-cell wall time, nanoseconds.
    pub cell_wall: LogHistogram,
    /// Scheduler counters (filled by `next_cell`).
    pub pool: PoolObs,
    /// Step-loop accumulator merged across every cell this worker ran.
    pub kernel: StepObs,
    /// Fast-forwarded idle-gap lengths (milliseconds) merged across
    /// every cell this worker ran — empty under fixed-dt advance.
    pub gap_len_ms: LogHistogram,
    /// Cells this worker admitted into a lockstep pool (zero in scalar
    /// mode).
    pub lanes_entered: u64,
    /// Sum of per-cell lane occupancies, in permille of post-admission
    /// steps executed on the batched path. Kept as an exact integer sum
    /// so a divergence-free run assembles to a `batch.lane_occupancy`
    /// gauge of exactly 1.0.
    pub occupancy_permille_sum: u64,
    /// Per-cell lane-occupancy distribution (permille).
    pub lane_occupancy: LogHistogram,
    /// Lockstep rounds this worker's pool executed.
    pub batch_rounds: u64,
    /// Lane-steps executed across those rounds (live lanes only).
    pub batch_lane_steps: u64,
    /// Lane-slots offered across those rounds (K × rounds) — the
    /// `batch.lane_utilization` denominator.
    pub batch_lane_slots: u64,
    /// This worker's trace track: one complete event per cell.
    pub trace: TraceEventLog,
}

impl WorkerObs {
    /// A fresh collector for `worker`, stamping trace timestamps
    /// relative to `epoch`.
    pub fn new(worker: usize, epoch: Instant) -> Self {
        WorkerObs {
            worker,
            epoch,
            cells: 0,
            failed: 0,
            busy_ns: 0,
            idle_ns: 0,
            cell_wall: LogHistogram::new(),
            pool: PoolObs::default(),
            kernel: StepObs::default(),
            gap_len_ms: LogHistogram::new(),
            lanes_entered: 0,
            occupancy_permille_sum: 0,
            lane_occupancy: LogHistogram::new(),
            batch_rounds: 0,
            batch_lane_steps: 0,
            batch_lane_slots: 0,
            trace: TraceEventLog::new(),
        }
    }

    /// Banks time spent looking for work (the `next_cell` call).
    pub fn bank_idle(&mut self, t0: Instant) {
        self.idle_ns = self.idle_ns.saturating_add(ns_since(t0));
    }

    /// Banks time spent executing (warm-up, lockstep rounds, retirement
    /// finishing) in batch mode, where per-cell wall clocks overlap and
    /// cannot be summed into the busy total.
    pub fn bank_busy(&mut self, t0: Instant) {
        self.busy_ns = self.busy_ns.saturating_add(ns_since(t0));
    }

    /// Records the lane occupancy of one pooled cell: the fraction
    /// (permille, half-up) of its post-admission engine steps that ran
    /// on the batched path. A cell that never diverged after admission
    /// scores exactly 1000.
    pub fn record_lane_occupancy(&mut self, batched_steps: u64, steps_in_pool: u64) {
        if steps_in_pool == 0 {
            return;
        }
        let permille = (1000 * batched_steps + steps_in_pool / 2) / steps_in_pool;
        self.lanes_entered += 1;
        self.occupancy_permille_sum += permille;
        self.lane_occupancy.record(permille);
    }

    /// Records one executed cell: wall time into the histogram and the
    /// busy total, the kernel accumulator folded in, and a complete
    /// trace event on this worker's track.
    pub fn observe_cell(
        &mut self,
        name: &str,
        index: usize,
        started: Instant,
        outcome: &Result<ScenarioResult, String>,
    ) {
        self.busy_ns = self.busy_ns.saturating_add(ns_since(started));
        self.record_cell(name, index, started, outcome);
    }

    /// Records one cell executed on the batched path. Identical to
    /// [`WorkerObs::observe_cell`] except the cell's wall time does
    /// *not* feed the busy total: pooled cells overlap in time, so busy
    /// time is banked per execution segment via [`WorkerObs::bank_busy`]
    /// instead (the wall histogram and trace still get the full
    /// claim-to-finish span).
    pub fn observe_batched_cell(
        &mut self,
        name: &str,
        index: usize,
        started: Instant,
        outcome: &Result<ScenarioResult, String>,
    ) {
        self.record_cell(name, index, started, outcome);
    }

    fn record_cell(
        &mut self,
        name: &str,
        index: usize,
        started: Instant,
        outcome: &Result<ScenarioResult, String>,
    ) {
        let wall_ns = ns_since(started);
        self.cells += 1;
        self.cell_wall.record(wall_ns);
        let status = match outcome {
            Ok(result) => {
                self.kernel.merge(&result.kernel);
                self.gap_len_ms.merge(&result.gap_len_ms);
                "ok"
            }
            Err(_) => {
                self.failed += 1;
                "failed"
            }
        };
        let ts_us = started.duration_since(self.epoch).as_secs_f64() * 1e6;
        self.trace.complete(
            name,
            self.worker as u32,
            ts_us,
            wall_ns as f64 / 1e3,
            vec![
                ("index", ArgValue::Num(index as f64)),
                ("status", ArgValue::Str(status.to_string())),
            ],
        );
    }
}

/// The shared run-scope context an instrumented sweep threads through
/// the pool: the trace epoch every worker stamps timestamps against,
/// and the vector each worker pushes its [`WorkerObs`] into at exit.
#[derive(Debug)]
pub(crate) struct RunObs {
    pub(crate) epoch: Instant,
    pub(crate) collected: Mutex<Vec<WorkerObs>>,
}

impl RunObs {
    pub(crate) fn new() -> Self {
        RunObs {
            epoch: Instant::now(),
            collected: Mutex::new(Vec::new()),
        }
    }

    /// Takes the collected per-worker observations, worker order.
    pub(crate) fn into_workers(self) -> Vec<WorkerObs> {
        let mut workers = self
            .collected
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        workers.sort_by_key(|w| w.worker);
        workers
    }
}

/// What an instrumented sweep run
/// ([`SweepSpec::run_instrumented`](crate::SweepSpec::run_instrumented))
/// returns beside its [`SweepRunStats`]: the assembled metrics
/// registry, the Chrome trace-event log (one track per worker), and the
/// merged step-loop accumulator.
#[derive(Debug)]
pub struct SweepObsReport {
    /// Every pool/engine metric, named; snapshot with
    /// [`SweepObsReport::snapshot`].
    pub registry: MetricsRegistry,
    /// One track per worker, one complete event per cell — export with
    /// [`SweepObsReport::write_trace`].
    pub trace: TraceEventLog,
    /// Workers the pool actually ran.
    pub workers: usize,
    /// Step-loop counters and power/thermal time split, merged across
    /// every cell.
    pub kernel: StepObs,
    /// Total nanoseconds workers spent executing cells.
    pub busy_ns: u64,
}

impl SweepObsReport {
    /// Folds the per-worker collections into the named metrics and the
    /// merged trace.
    pub(crate) fn assemble(per_worker: Vec<WorkerObs>, stats: &SweepRunStats) -> Self {
        let mut registry = MetricsRegistry::new();
        let mut trace = TraceEventLog::new();
        let mut kernel = StepObs::default();
        let mut busy_ns = 0u64;
        let mut lanes_entered = 0u64;
        let mut occupancy_sum = 0u64;
        let mut lane_steps = 0u64;
        let mut lane_slots = 0u64;

        registry.add_named("sweep.cells", stats.cells as u64);
        registry.add_named("sweep.completed", stats.completed as u64);
        registry.add_named("sweep.failed", stats.failed as u64);
        registry.add_named("sweep.skipped", stats.skipped as u64);
        registry.set_named("sweep.wall_s", stats.wall.as_secs_f64());
        registry.set_named("sweep.cells_per_sec", stats.cells_per_sec());

        for w in &per_worker {
            let id = w.worker;
            registry.add_named(&format!("worker.{id:02}.cells"), w.cells);
            registry.add_named(&format!("worker.{id:02}.failed"), w.failed);
            registry.add_named(
                &format!("worker.{id:02}.steal_attempts"),
                w.pool.steal_attempts,
            );
            registry.add_named(
                &format!("worker.{id:02}.steal_successes"),
                w.pool.steal_successes,
            );
            registry.add_named(
                &format!("worker.{id:02}.injector_refills"),
                w.pool.injector_refills,
            );
            let busy_s = w.busy_ns as f64 / 1e9;
            let idle_s = w.idle_ns as f64 / 1e9;
            registry.set_named(&format!("worker.{id:02}.busy_s"), busy_s);
            registry.set_named(&format!("worker.{id:02}.idle_s"), idle_s);
            let lifetime = busy_s + idle_s;
            registry.set_named(
                &format!("worker.{id:02}.utilization"),
                if lifetime > 0.0 {
                    busy_s / lifetime
                } else {
                    0.0
                },
            );
            registry.merge_histogram("cell.wall_ns", &w.cell_wall);
            registry.merge_histogram("pool.steal_size", &w.pool.steal_sizes);
            registry.merge_histogram("pool.queue_depth", &w.pool.queue_depth);
            registry.merge_histogram("engine.gap_len_ms", &w.gap_len_ms);
            registry.merge_histogram("batch.lane_occupancy", &w.lane_occupancy);
            kernel.merge(&w.kernel);
            busy_ns = busy_ns.saturating_add(w.busy_ns);
            lanes_entered += w.lanes_entered;
            occupancy_sum += w.occupancy_permille_sum;
            lane_steps += w.batch_lane_steps;
            lane_slots += w.batch_lane_slots;

            trace.thread_name(id as u32, &format!("sweep worker {id}"));
        }
        registry.add_named("engine.steps", kernel.steps);
        registry.add_named("engine.batched_steps", kernel.batched_steps);
        registry.add_named("batch.lanes_entered", lanes_entered);
        registry.add_named(
            "batch.rounds",
            per_worker.iter().map(|w| w.batch_rounds).sum(),
        );
        if lanes_entered > 0 {
            // Exact when every pooled cell scored 1000‰: the sum is then
            // 1000·n and the division yields precisely 1.0.
            registry.set_named(
                "batch.lane_occupancy",
                occupancy_sum as f64 / (1000 * lanes_entered) as f64,
            );
        }
        if lane_slots > 0 {
            registry.set_named(
                "batch.lane_utilization",
                lane_steps as f64 / lane_slots as f64,
            );
        }
        registry.add_named("engine.substeps", kernel.substeps);
        registry.add_named("engine.power_ns", kernel.power_ns);
        registry.add_named("engine.thermal_ns", kernel.thermal_ns);
        registry.add_named("engine.sample_ns", kernel.sample_ns);
        registry.add_named("engine.trace_ns", kernel.trace_ns);
        registry.add_named("engine.control_ns", kernel.control_ns);
        registry.add_named("engine.gaps_skipped", kernel.gaps_skipped);
        registry.add_named("engine.gap_segments", kernel.gap_segments);
        registry.set_named("engine.gap_fastforward_s", kernel.gap_fastforward_s);

        let workers = per_worker.len();
        for w in per_worker {
            trace.extend(w.trace);
        }
        SweepObsReport {
            registry,
            trace,
            workers,
            kernel,
            busy_ns,
        }
    }

    /// Folds a [`SweepJournal`](crate::SweepJournal)'s I/O counters into
    /// the registry (call before [`SweepObsReport::snapshot`] when the
    /// sweep wrote a journal).
    pub fn add_journal(&mut self, io: &JournalIoStats) {
        self.registry.add_named("journal.records", io.records);
        self.registry.add_named("journal.bytes", io.bytes);
        self.registry.add_named("journal.fsyncs", io.fsyncs);
        self.registry
            .add_named("journal.torn_repairs", io.torn_tail_repairs);
    }

    /// The name-sorted metrics snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Writes the Chrome trace-event JSON to `path` (load it in
    /// `chrome://tracing` or Perfetto).
    ///
    /// # Errors
    ///
    /// Any file I/O failure.
    pub fn write_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.trace.to_json())
    }

    /// A terminal table splitting worker busy time between the power
    /// model, the thermal integration, sensor sampling, trace
    /// recording, the control/actuate phases, and everything else the
    /// step loop does (event handling, progress, scheduling) — only
    /// meaningful when the run timed (instrumented runs always do).
    pub fn kernel_split(&self) -> String {
        use std::fmt::Write as _;
        let k = &self.kernel;
        let busy = self.busy_ns.max(1) as f64;
        let other_ns = self
            .busy_ns
            .saturating_sub(k.power_ns)
            .saturating_sub(k.thermal_ns)
            .saturating_sub(k.sample_ns)
            .saturating_sub(k.trace_ns)
            .saturating_sub(k.control_ns);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel time split ({} steps, {} thermal sub-steps):",
            k.steps, k.substeps
        );
        for (label, ns) in [
            ("power model", k.power_ns),
            ("thermal integration", k.thermal_ns),
            ("sensor sampling", k.sample_ns),
            ("trace recording", k.trace_ns),
            ("control+actuate", k.control_ns),
            ("engine other", other_ns),
        ] {
            let _ = writeln!(
                out,
                "  {label:<22} {:>10.1} ms  {:>5.1}%",
                ns as f64 / 1e6,
                100.0 * ns as f64 / busy
            );
        }
        if k.substeps > 0 {
            let _ = writeln!(
                out,
                "  {:<22} {:>10.0} ns",
                "per thermal sub-step",
                k.thermal_ns as f64 / k.substeps as f64
            );
        }
        out
    }
}

/// A [`SweepEvent`] sink producing a throttled live progress line:
/// done/total, cells/s, ETA, failure count, Pareto-front size and
/// worker utilization — the campaign-scale analogue of the paper's
/// online telemetry loop.
///
/// Feed every event to [`ProgressReporter::observe`] and print whatever
/// it returns; the terminal `Finished` event always yields a final
/// line. The embedded [`SweepAggregator`] (for the Pareto-front size)
/// is available afterwards via [`ProgressReporter::aggregator`], so a
/// caller gets the live line *and* the end-of-run report from one sink.
#[derive(Debug)]
pub struct ProgressReporter {
    model: ProgressModel,
    agg: SweepAggregator,
}

impl ProgressReporter {
    /// A reporter for a sweep of `total` cells on `workers` workers
    /// (threads actually used, e.g. [`SweepSpec::threads`] capped by
    /// the grid — used only for the utilization denominator).
    ///
    /// [`SweepSpec::threads`]: crate::SweepSpec::threads
    pub fn new(total: usize, workers: usize) -> Self {
        ProgressReporter {
            model: ProgressModel::new(total, workers),
            agg: SweepAggregator::new(),
        }
    }

    /// Overrides the line throttle (default 100 ms; zero emits on every
    /// event).
    pub fn with_min_interval(mut self, min_interval: std::time::Duration) -> Self {
        self.model = self.model.with_min_interval(min_interval);
        self
    }

    /// Folds one event; returns a progress line when one is due (always
    /// on `Finished`).
    pub fn observe(&mut self, event: &SweepEvent) -> Option<String> {
        match event {
            SweepEvent::CellStarted { .. } => {
                self.model.started();
                self.model.poll()
            }
            SweepEvent::CellDone { result, .. } => {
                self.agg.record(&result.summary);
                self.model.finished(false);
                self.model.set_pareto(self.agg.pareto_front().len());
                self.model.poll()
            }
            SweepEvent::CellFailed { .. } => {
                self.model.finished(true);
                self.model.poll()
            }
            SweepEvent::Finished { .. } => Some(self.model.line()),
        }
    }

    /// Failures folded so far.
    pub fn failed(&self) -> usize {
        self.model.failed()
    }

    /// The aggregator fed by every `CellDone` — the end-of-run report.
    pub fn aggregator(&self) -> &SweepAggregator {
        &self.agg
    }
}

/// The coordinator's campaign-wide progress line: per-shard journal
/// tallies folded into one `done/total` view with live-worker count,
/// campaign-level rate and ETA — one line for N processes, the
/// process-level analogue of [`ProgressReporter`]'s one line for N
/// threads.
///
/// Unlike [`ProgressReporter`] this is not an event sink: the
/// coordinator has no in-process event stream, only journal files. It
/// polls their record counts and calls [`CampaignProgress::update`];
/// the struct owns the throttle and the rendering.
///
/// Rate and ETA follow the shared first-tick convention (see
/// `ProgressModel` in `teem-telemetry`): until wall time *and* at least
/// one completed cell exist they render as `--`, never `inf`/`NaN`.
#[derive(Debug)]
pub struct CampaignProgress {
    total: usize,
    workers: usize,
    epoch: Instant,
    last_emit: Option<Instant>,
    min_interval: std::time::Duration,
}

impl CampaignProgress {
    /// A progress view for a campaign of `total` cells starting on
    /// `workers` worker processes.
    pub fn new(total: usize, workers: usize) -> Self {
        CampaignProgress {
            total,
            workers,
            epoch: Instant::now(),
            last_emit: None,
            min_interval: std::time::Duration::from_millis(100),
        }
    }

    /// Overrides the line throttle (default 100 ms; zero emits on every
    /// update).
    pub fn with_min_interval(mut self, min_interval: std::time::Duration) -> Self {
        self.min_interval = min_interval;
        self
    }

    /// Folds the latest journal tallies; returns a line when one is due
    /// (throttled).
    pub fn update(&mut self, done: usize, failed: usize, live: usize) -> Option<String> {
        let due = match self.last_emit {
            None => true,
            Some(at) => at.elapsed() >= self.min_interval,
        };
        if !due {
            return None;
        }
        self.last_emit = Some(Instant::now());
        Some(self.line_with(done, failed, live))
    }

    /// Renders a line unconditionally — the coordinator's final line
    /// after the fleet has drained (`live` is then 0).
    pub fn line(&mut self, live: usize) -> String {
        self.line_with(self.total, 0, live)
    }

    fn line_with(&self, done: usize, failed: usize, live: usize) -> String {
        let elapsed = self.epoch.elapsed().as_secs_f64();
        let (rate, eta) = if elapsed > 0.0 && done > 0 {
            let rate = done as f64 / elapsed;
            let eta = if done < self.total {
                format!("{:.1}s", (self.total - done) as f64 / rate)
            } else {
                "-".to_string()
            };
            (format!("{rate:.0}"), eta)
        } else {
            ("--".to_string(), "--".to_string())
        };
        let pct = if self.total > 0 {
            100.0 * done as f64 / self.total as f64
        } else {
            100.0
        };
        format!(
            "campaign {done}/{} ({pct:.0}%) | {live}/{} workers live | {rate} cells/s | \
             ETA {eta} | {failed} failed",
            self.total, self.workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_progress_first_tick_shows_dashes_and_throttles() {
        let mut p = CampaignProgress::new(500, 3).with_min_interval(std::time::Duration::ZERO);
        let line = p.update(0, 0, 3).expect("zero throttle always emits");
        assert!(line.contains("campaign 0/500"), "{line}");
        assert!(line.contains("3/3 workers live"), "{line}");
        assert!(line.contains("-- cells/s"), "{line}");
        assert!(line.contains("ETA --"), "{line}");
        assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");

        let mut throttled = CampaignProgress::new(500, 3);
        assert!(throttled.update(0, 0, 3).is_some(), "first line is free");
        assert!(
            throttled.update(1, 0, 3).is_none(),
            "second within 100 ms is suppressed"
        );

        std::thread::sleep(std::time::Duration::from_millis(2));
        let line = p.update(250, 2, 2).expect("emits");
        assert!(line.contains("campaign 250/500 (50%)"), "{line}");
        assert!(line.contains("2/3 workers live"), "{line}");
        assert!(line.contains("2 failed"), "{line}");
        assert!(!line.contains("--"), "rate and ETA are live now: {line}");

        let fin = p.line(0);
        assert!(fin.contains("campaign 500/500 (100%)"), "{fin}");
        assert!(fin.contains("0/3 workers live"), "{fin}");
        assert!(fin.contains("ETA -"), "{fin}");
    }

    #[test]
    fn worker_obs_folds_cells_into_histogram_and_trace() {
        let epoch = Instant::now();
        let mut w = WorkerObs::new(3, epoch);
        w.observe_cell("cell-a", 7, Instant::now(), &Err("boom".to_string()));
        assert_eq!(w.cells, 1);
        assert_eq!(w.failed, 1);
        assert_eq!(w.cell_wall.count(), 1);
        assert_eq!(w.trace.len(), 1);
        assert_eq!(w.trace.events()[0].tid, 3);
    }

    #[test]
    fn report_assembles_per_worker_sums_and_tracks() {
        let epoch = Instant::now();
        let mut a = WorkerObs::new(0, epoch);
        a.observe_cell("c0", 0, Instant::now(), &Err("x".to_string()));
        a.observe_cell("c1", 1, Instant::now(), &Err("x".to_string()));
        let mut b = WorkerObs::new(1, epoch);
        b.observe_cell("c2", 2, Instant::now(), &Err("x".to_string()));
        let stats = SweepRunStats {
            cells: 3,
            completed: 0,
            failed: 3,
            skipped: 0,
            wall: std::time::Duration::from_millis(5),
        };
        let mut report = SweepObsReport::assemble(vec![a, b], &stats);
        report.add_journal(&JournalIoStats {
            records: 3,
            bytes: 600,
            fsyncs: 1,
            torn_tail_repairs: 0,
        });
        let snap = report.snapshot();
        assert_eq!(snap.counter("worker.00.cells"), Some(2));
        assert_eq!(snap.counter("worker.01.cells"), Some(1));
        assert_eq!(snap.counter("sweep.cells"), Some(3));
        assert_eq!(snap.counter("journal.bytes"), Some(600));
        assert_eq!(snap.histogram("cell.wall_ns").unwrap().count, 3);
        assert_eq!(report.trace.tracks().len(), 2);
        teem_telemetry::TraceEventLog::validate(&report.trace.to_json()).expect("valid trace");
        assert!(report.kernel_split().contains("power model"));
    }
}
