//! The streaming sweep engine: cartesian scenario × knob grids executed
//! by a work-stealing thread pool that **streams** results as cells
//! finish, instead of buffering a whole matrix.
//!
//! A [`SweepSpec`] names the axes — scenarios × approaches ×
//! [`ContentionPolicy`] × initial threshold × ambient ×
//! [`TeemTunables`] × [`IdlePolicy`] — and enumerates their cartesian
//! product *lazily*: a cell is materialised (scenario cloned, knobs
//! applied) only on the worker that executes it, so a ten-thousand-cell
//! grid costs ten-thousand-cell memory **never** — the engine's resident
//! state is O(workers), and whoever consumes the [`SweepEvent`] stream
//! decides what to keep.
//!
//! Execution is a work-stealing pool over [`std::thread::scope`]: cells
//! are split into chunks on a shared injector queue; each worker drains
//! its claimed chunk cell by cell, refills from the injector, and when
//! that runs dry steals the back half of the fullest sibling's claim —
//! so one pathologically slow scenario cannot strand the rest of its
//! chunk behind it. Every finished cell is sent through an
//! [`mpsc`](std::sync::mpsc) channel and handed to the caller's event
//! sink *on the calling thread*, in completion order.
//!
//! A panicking cell (satellite of the PR 1 poisoned-mutex fix) is
//! caught on the worker, reported as [`SweepEvent::CellFailed`] naming
//! the cell, and the sweep **keeps draining** the remaining cells —
//! one bad cell costs one cell, not the grid.
//!
//! [`BatchRunner`](crate::BatchRunner) is a thin collect-and-reorder
//! wrapper over this engine, and keeps its deterministic scenario-major
//! output (pinned bit-identical by the golden-digest tests).

use std::collections::{BTreeSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::arbiter::ContentionPolicy;
use crate::exec::{ScenarioResult, ScenarioRunner};
use crate::lockstep::LockstepPool;
use crate::obs::{PoolObs, RunObs, SweepObsReport, WorkerObs};
use crate::scenario::Scenario;
use teem_core::offline::build_profile_store;
use teem_core::runner::Approach;
use teem_core::{ProfileStore, TeemTunables};
use teem_soc::{Board, BoardSpec, IdlePolicy, SimConfig, TimeAdvance};
use teem_telemetry::Fnv;
use teem_workload::App;

/// Everything that can go wrong in a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// Offline profiling failed before any cell ran.
    Profiling(teem_linreg::LinregError),
    /// One cell failed (an in-cell error or a caught panic). The sweep
    /// drained every other cell before reporting this.
    Cell {
        /// The failed cell's name (scenario name with knob tags plus
        /// the approach).
        cell: String,
        /// What happened.
        message: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Profiling(e) => write!(f, "sweep profiling failed: {e}"),
            SweepError::Cell { cell, message } => {
                write!(f, "sweep cell `{cell}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Profiling(e) => Some(e),
            SweepError::Cell { .. } => None,
        }
    }
}

impl From<teem_linreg::LinregError> for SweepError {
    fn from(e: teem_linreg::LinregError) -> Self {
        SweepError::Profiling(e)
    }
}

/// Field-wise overrides applied on top of
/// [`ScenarioRunner::default_config`] — the safe way to customise the
/// executor configuration.
///
/// [`ScenarioRunner::with_config`] replaces the configuration
/// *wholesale*, so a caller building a [`SimConfig`] from scratch
/// silently loses the scenario-scale 10 000 s timeout (the PR 1
/// footgun). A patch starts from the right defaults and overrides only
/// what it names:
///
/// ```
/// use teem_scenario::ConfigPatch;
///
/// let cfg = ConfigPatch {
///     sample_period_s: Some(0.2),
///     ..ConfigPatch::default()
/// }
/// .onto_default();
/// assert_eq!(cfg.sample_period_s, 0.2);
/// assert_eq!(cfg.timeout_s, 10_000.0, "scenario timeout survives");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConfigPatch {
    /// Integration step override, seconds.
    pub dt_s: Option<f64>,
    /// Sampling-period override, seconds.
    pub sample_period_s: Option<f64>,
    /// Timeout override, seconds.
    pub timeout_s: Option<f64>,
    /// Warm-start fraction override.
    pub warm_start_fraction: Option<f64>,
    /// Idle-policy override (an explicit [`SweepSpec::idle_policies`]
    /// axis wins over this).
    pub idle_policy: Option<IdlePolicy>,
    /// Time-advance mode override ([`TimeAdvance::EventDriven`] turns
    /// on gap fast-forwarding).
    pub time_advance: Option<TimeAdvance>,
}

impl ConfigPatch {
    /// Applies the overrides on top of `base`.
    pub fn apply(self, mut base: SimConfig) -> SimConfig {
        if let Some(v) = self.dt_s {
            base.dt_s = v;
        }
        if let Some(v) = self.sample_period_s {
            base.sample_period_s = v;
        }
        if let Some(v) = self.timeout_s {
            base.timeout_s = v;
        }
        if let Some(v) = self.warm_start_fraction {
            base.warm_start_fraction = v;
        }
        if let Some(v) = self.idle_policy {
            base.idle_policy = v;
        }
        if let Some(v) = self.time_advance {
            base.time_advance = v;
        }
        base
    }

    /// Applies the overrides on top of the scenario-scale defaults
    /// ([`ScenarioRunner::default_config`]) — never on a zeroed
    /// [`SimConfig`].
    pub fn onto_default(self) -> SimConfig {
        self.apply(ScenarioRunner::default_config())
    }

    /// `true` when the patch overrides nothing.
    pub fn is_noop(&self) -> bool {
        *self == ConfigPatch::default()
    }
}

/// One cell of the sweep grid: a scenario under one approach with one
/// setting picked from every knob axis.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Linear cell index — the deterministic position in the grid
    /// (scenario-major: the scenario is the outermost axis, the
    /// approach the innermost).
    pub index: usize,
    /// The materialised scenario name: the base name plus a tag per
    /// knob axis the spec set (e.g. `"bursty@thr82/amb30/d100/f1400"`).
    pub name: String,
    /// Management approach.
    pub approach: Approach,
    /// Contention policy the cell co-schedules under.
    pub contention: ContentionPolicy,
    /// Initial default threshold, °C (`None` keeps the scenario's own
    /// timeline).
    pub threshold_c: Option<f64>,
    /// Initial ambient override, °C.
    pub ambient_c: Option<f64>,
    /// TEEM knob set (δ / floor / threshold override).
    pub tunables: TeemTunables,
    /// Idle-policy override.
    pub idle_policy: Option<IdlePolicy>,
    /// The thermal-network variant the cell simulates on
    /// ([`SweepSpec::boards`]; the XU4 unless the axis says otherwise).
    pub board: BoardSpec,
    scenario_index: usize,
}

/// One event on the sweep stream.
#[derive(Debug)]
pub enum SweepEvent {
    /// A worker picked up a cell.
    CellStarted {
        /// Linear cell index.
        index: usize,
        /// Materialised cell name.
        name: String,
        /// The cell's approach.
        approach: Approach,
    },
    /// A cell finished; this event owns its full result — the engine
    /// keeps nothing.
    CellDone {
        /// Which cell.
        cell: SweepCell,
        /// Its complete result (summary, trace, timeout flag).
        result: Box<ScenarioResult>,
    },
    /// A cell failed (in-cell error or caught panic); the sweep keeps
    /// draining the remaining cells.
    CellFailed {
        /// Linear cell index.
        index: usize,
        /// Materialised cell name.
        name: String,
        /// Failure description (panic payload or error display).
        message: String,
    },
    /// The sweep is complete; always the last event.
    Finished {
        /// Cells executed in this run: the full grid, minus any cells
        /// skipped by a resume ([`SweepSpec::skip_cells`]) — so 0 when
        /// resuming an already-complete journal.
        cells: usize,
        /// How many failed.
        failed: usize,
    },
}

/// What a finished sweep reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunStats {
    /// Cells this run executed (the full grid minus skipped cells).
    pub cells: usize,
    /// Cells that completed with a result.
    pub completed: usize,
    /// Cells that failed (error or panic).
    pub failed: usize,
    /// Cells skipped because a resumed journal already holds them
    /// ([`SweepSpec::skip_cells`] / `SweepSpec::resume_from`).
    pub skipped: usize,
    /// Wall-clock time of the run, first claim to pool join — the one
    /// denominator every cells/s figure in the workspace divides by.
    pub wall: Duration,
}

impl SweepRunStats {
    /// Executed cells per wall-clock second (0 for an instantaneous or
    /// empty run) — the canonical throughput figure the benches,
    /// examples and `repro` all report.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cells as f64 / secs
        } else {
            0.0
        }
    }
}

/// A cartesian sweep specification: which scenarios, under which
/// approaches, across which knob grids.
///
/// Axes not set stay at their single default value (the approaches
/// default to TEEM alone, the contention to the paper's serial model,
/// thresholds/ambients/tunables/idle policy to "whatever the scenario
/// and configuration already say"), so the smallest spec is exactly the
/// old scenario × approach matrix — and with no extra axes the cell
/// scenarios run *unrenamed and untouched*, which is how
/// [`BatchRunner`](crate::BatchRunner) keeps its golden digests
/// bit-identical on top of this engine.
///
/// # Streaming thousands of cells in O(workers) memory
///
/// The idiom for big grids: aggregate online, keep nothing.
///
/// ```
/// use teem_core::runner::Approach;
/// use teem_scenario::{Scenario, SweepEvent, SweepSpec};
/// use teem_telemetry::SweepAggregator;
/// use teem_workload::App;
///
/// # fn main() -> Result<(), teem_scenario::SweepError> {
/// // scenarios × thresholds × ambients — add axes to taste; the cell
/// // count is the product, the memory stays O(workers).
/// let spec = SweepSpec::over([
///     Scenario::new("spike").arrive(0.0, App::Mvt, 0.9),
///     Scenario::new("pair").arrive(0.0, App::Gesummv, 0.9),
/// ])
/// .approaches(&[Approach::Teem])
/// .thresholds_c(&[82.0, 85.0])
/// .ambients_c(&[25.0]);
///
/// let mut agg = SweepAggregator::new();
/// let stats = spec.run_streaming(|ev| {
///     if let SweepEvent::CellDone { result, .. } = ev {
///         agg.record(&result.summary); // result dropped right here
///     }
/// })?;
/// assert_eq!(stats.cells, 4);
/// assert_eq!(agg.cells(), 4);
/// assert_eq!(agg.trips_total(), 0); // TEEM: proactive, trip-free
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    scenarios: Vec<Scenario>,
    approaches: Vec<Approach>,
    contentions: Vec<ContentionPolicy>,
    thresholds_c: Option<Vec<f64>>,
    ambients_c: Option<Vec<f64>>,
    tunables: Option<Vec<TeemTunables>>,
    idle_policies: Option<Vec<IdlePolicy>>,
    boards: Option<Vec<BoardSpec>>,
    base_config: Option<SimConfig>,
    patch: ConfigPatch,
    threads: usize,
    chunk: Option<usize>,
    batch: Option<usize>,
    sample_staging: bool,
    skip: BTreeSet<usize>,
    shard: Option<crate::shard::ShardSpec>,
}

impl SweepSpec {
    /// A sweep over `scenarios`, under TEEM, serial contention, and the
    /// paper's knobs — extend with the axis builders.
    pub fn over(scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        SweepSpec {
            scenarios: scenarios.into_iter().collect(),
            approaches: vec![Approach::Teem],
            contentions: vec![ContentionPolicy::Serial],
            thresholds_c: None,
            ambients_c: None,
            tunables: None,
            idle_policies: None,
            boards: None,
            base_config: None,
            patch: ConfigPatch::default(),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            chunk: None,
            batch: None,
            sample_staging: true,
            skip: BTreeSet::new(),
            shard: None,
        }
    }

    /// Sets the approach axis (empty ⇒ zero cells).
    pub fn approaches(mut self, approaches: &[Approach]) -> Self {
        self.approaches = approaches.to_vec();
        self
    }

    /// Sets the contention-policy axis. With more than one policy the
    /// cell names carry a policy tag.
    pub fn contentions(mut self, policies: &[ContentionPolicy]) -> Self {
        self.contentions = policies.to_vec();
        self
    }

    /// Adds an initial-threshold axis: every cell scenario is re-based
    /// on the given default threshold
    /// ([`Scenario::with_initial_threshold`]), which flows into each
    /// arrival's requirement. Note that a [`TeemTunables`] knob set
    /// carrying its own `threshold_c` override takes precedence over
    /// this axis (and over per-arrival overrides) for TEEM cells.
    ///
    /// # Panics
    ///
    /// Panics if a threshold is not a plausible silicon threshold
    /// (40 to 120 °C) — validated here, on the caller's thread, rather
    /// than as a worker panic mid-sweep — or if the combination with an
    /// already-set knob axis makes this axis dead (see
    /// [`SweepSpec::tunables`]).
    pub fn thresholds_c(mut self, thresholds_c: &[f64]) -> Self {
        for &t in thresholds_c {
            assert!(
                t.is_finite() && (40.0..=120.0).contains(&t),
                "threshold {t} out of plausible range"
            );
        }
        self.thresholds_c = Some(thresholds_c.to_vec());
        self.assert_threshold_axis_alive();
        self
    }

    /// Adds an initial-ambient axis ([`Scenario::with_initial_ambient`]).
    ///
    /// # Panics
    ///
    /// Panics if an ambient is outside −40 to 120 °C.
    pub fn ambients_c(mut self, ambients_c: &[f64]) -> Self {
        for &a in ambients_c {
            assert!(
                a.is_finite() && (-40.0..=120.0).contains(&a),
                "ambient {a} out of plausible range"
            );
        }
        self.ambients_c = Some(ambients_c.to_vec());
        self
    }

    /// Adds a TEEM knob axis (δ / floor / threshold override per cell;
    /// see [`TeemTunables`]). A knob set with `threshold_c: Some(_)`
    /// overrides the scenario's threshold wholesale for TEEM cells.
    ///
    /// # Panics
    ///
    /// Panics if combined with a [`SweepSpec::thresholds_c`] axis while
    /// *every* knob set overrides the threshold: the threshold axis
    /// would then only multiply the grid with duplicate-physics cells
    /// under different names.
    pub fn tunables(mut self, tunables: &[TeemTunables]) -> Self {
        self.tunables = Some(tunables.to_vec());
        self.assert_threshold_axis_alive();
        self
    }

    /// Rejects grids whose thresholds axis is provably inert because
    /// every TEEM knob set carries its own threshold override.
    fn assert_threshold_axis_alive(&self) {
        if let (Some(thresholds), Some(tunables)) = (&self.thresholds_c, &self.tunables) {
            let axis_dead = !thresholds.is_empty()
                && !tunables.is_empty()
                && tunables.iter().all(|t| t.threshold_c.is_some());
            assert!(
                !axis_dead,
                "every TeemTunables in the knob axis overrides the threshold, so the \
                 thresholds_c axis would only duplicate physics under different cell \
                 names; drop one of the two threshold sources"
            );
        }
    }

    /// Adds an idle-policy axis (overrides the configuration's policy
    /// per cell).
    pub fn idle_policies(mut self, policies: &[IdlePolicy]) -> Self {
        self.idle_policies = Some(policies.to_vec());
        self
    }

    /// Adds a board axis: each cell simulates on the named thermal
    /// network ([`BoardSpec::OdroidXu4`], or a generated
    /// [`BoardSpec::ManyNode`] variant with 16–64 nodes). A physics
    /// axis — boards land in the fingerprint and in the cell-name tags.
    /// The batched path groups same-board cells through one lockstep
    /// pool (boards vary slower than any other axis), rebuilding its
    /// SoA batch only at board boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `boards` is empty, or a [`BoardSpec::ManyNode`] node
    /// count is outside 16..=64 (validated here, on the caller's
    /// thread, not as a worker panic mid-sweep).
    pub fn boards(mut self, boards: &[BoardSpec]) -> Self {
        assert!(!boards.is_empty(), "boards axis needs at least one entry");
        for b in boards {
            if let BoardSpec::ManyNode { nodes } = *b {
                assert!(
                    (16..=64).contains(&nodes),
                    "many-node boards span 16..=64 nodes, got {nodes}"
                );
            }
        }
        self.boards = Some(boards.to_vec());
        self
    }

    /// Replaces the base executor configuration wholesale (the patch,
    /// if any, still applies on top). Prefer [`SweepSpec::patch_config`]
    /// unless you really mean every field.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.base_config = Some(config);
        self
    }

    /// Overrides configuration fields on top of
    /// [`ScenarioRunner::default_config`] — the footgun-free
    /// customisation path.
    pub fn patch_config(mut self, patch: ConfigPatch) -> Self {
        self.patch = patch;
        self
    }

    /// Caps the worker count (1 ⇒ fully sequential in cell-index order,
    /// useful for determinism A/B tests).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker");
        self.threads = threads;
        self
    }

    /// Sets the injector chunk size (cells claimed per grab). Defaults
    /// to a size that gives every worker several claims, capped so the
    /// tail stays stealable — and, in batch mode
    /// ([`SweepSpec::batch`]), rounded **up** to a multiple of the lane
    /// count K, so a freshly claimed chunk fills a worker's lockstep
    /// pool completely instead of leaving lanes idle at every chunk
    /// boundary. An explicit chunk is taken as given in both modes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be at least one cell");
        self.chunk = Some(chunk);
        self
    }

    /// Turns on the batched execution path: each worker steps up to `k`
    /// topology-compatible cells in SIMD lockstep through one shared
    /// [`ThermalBatch`](teem_soc::ThermalBatch), refilling lanes from
    /// its claim as cells retire. Cells outside the lockstep-eligible
    /// regime (multi-app phases, pending timeline events, thermal-zone
    /// trips) run scalar for exactly those phases and batch for the
    /// rest, so **results are bit-identical to scalar mode** — the
    /// parity suite pins summaries and trace digests across K.
    ///
    /// This is a scheduling knob like [`SweepSpec::threads`] and
    /// [`SweepSpec::chunk`]: it changes throughput, never results, and
    /// is therefore deliberately **excluded from
    /// [`SweepSpec::fingerprint`]** — a journal recorded scalar resumes
    /// fine under batch and vice versa.
    ///
    /// `k = 1` degenerates to stepping single cells through the batch
    /// kernel (still bit-identical; useful for A/B tests). Sequential
    /// runs (`threads(1)`) batch too — K lockstep lanes on one thread.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or implausibly large (> 64).
    pub fn batch(mut self, k: usize) -> Self {
        assert!(
            (1..=64).contains(&k),
            "batch lane count {k} out of range (1..=64)"
        );
        self.batch = Some(k);
        self
    }

    /// Routes every cell's sample recording through the staged
    /// sample-major buffer (`true`, the default) or the per-channel
    /// append baseline (`false`). Like [`SweepSpec::batch`] this is a
    /// mechanism knob, not a physics knob: the recorded traces are
    /// bit-identical either way (the staged-parity suite pins it), so
    /// it is excluded from [`SweepSpec::fingerprint`]. The `false`
    /// setting exists for A/B measurement of the staging win.
    pub fn sample_staging(mut self, staged: bool) -> Self {
        self.sample_staging = staged;
        self
    }

    /// Marks cells (by linear grid index) to skip: the enumerator never
    /// materialises or executes them, and they do not appear on the
    /// event stream. This is the resume primitive —
    /// [`SweepSpec::resume_from`] feeds it the indices a persisted
    /// [`SweepJournal`](crate::SweepJournal) already holds — and the
    /// substrate shard lowering builds on
    /// ([`SweepSpec::shard`]). Duplicates (within one call or across
    /// calls) collapse to one skip; repeated calls accumulate.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index. An index past the grid can only
    /// mean the caller is skipping cells of a *different* grid — under
    /// the old silently-ignore behavior a mis-paired journal would
    /// quietly re-run nothing it should and skip nothing it shouldn't;
    /// shard lowering needs the loud version.
    pub fn skip_cells(mut self, indices: impl IntoIterator<Item = usize>) -> Self {
        let grid = self.cells();
        for index in indices {
            assert!(
                index < grid,
                "skip_cells index {index} is out of range for the {grid}-cell grid \
                 — these skips belong to a different grid"
            );
            self.skip.insert(index);
        }
        self
    }

    /// The skipped cell indices (what [`SweepSpec::skip_cells`] and
    /// `resume_from` accumulated), in ascending order.
    pub fn skipped_cells(&self) -> impl Iterator<Item = usize> + '_ {
        let grid = self.cells();
        self.skip.iter().copied().filter(move |&i| i < grid)
    }

    /// Restricts this spec to one shard of the grid: every cell the
    /// [`ShardSpec`](crate::ShardSpec) does *not* own is added to the
    /// skip set, and the shard's canonical label is stamped into the
    /// journal header (next to the grid fingerprint) by
    /// [`SweepJournal::create`](crate::SweepJournal::create).
    ///
    /// Sharding is pure scheduling: like the skip set it is **excluded
    /// from [`SweepSpec::fingerprint`]**, so every shard journal of one
    /// campaign carries the same fingerprint as the single-process run
    /// the shards merge into ([`SweepJournal::merge`](crate::SweepJournal::merge)).
    ///
    /// # Panics
    ///
    /// Panics when the shard does not fit the grid
    /// ([`ShardSpec::validate`](crate::ShardSpec::validate)) or when a
    /// shard was already set — two shards compose to a silent subset of
    /// both, which is never what a campaign means.
    pub fn shard(mut self, shard: crate::shard::ShardSpec) -> Self {
        assert!(
            self.shard.is_none(),
            "spec is already sharded ({}) — compose parts via WorkerAssignment, not nested shards",
            self.shard.as_ref().expect("just checked")
        );
        let grid = self.cells();
        if let Err(why) = shard.validate(grid) {
            panic!("shard does not fit the grid: {why}");
        }
        let off_shard: Vec<usize> = (0..grid).filter(|&i| !shard.contains(i)).collect();
        self.shard = Some(shard);
        self.skip_cells(off_shard)
    }

    /// The shard this spec was restricted to, if any.
    pub fn shard_spec(&self) -> Option<&crate::shard::ShardSpec> {
        self.shard.as_ref()
    }

    /// A stable 64-bit fingerprint of everything that determines the
    /// grid's *physics*: every axis (scenarios with their full event
    /// timelines, approaches, contention policies, thresholds,
    /// ambients, tunables, idle policies) plus the resolved executor
    /// configuration. Scheduling knobs (worker count, chunk size) and
    /// the skip set are deliberately excluded — they change completion
    /// order, never results.
    ///
    /// The persisted sweep journal stamps this into its header so a
    /// resume can reject a journal recorded for a *different* grid,
    /// and a cross-commit diff can tell "same grid, changed physics"
    /// from "not the same experiment".
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str("teem-sweep-v2");
        h.u64(self.scenarios.len() as u64);
        for s in &self.scenarios {
            h.str(s.name());
            h.f64(s.initial_ambient_c());
            let events = s.sorted_events();
            h.u64(events.len() as u64);
            for ev in &events {
                h.f64(ev.at_s);
                match ev.event {
                    crate::event::ScenarioEvent::Arrival(req) => {
                        // Exhaustive destructuring: a new physics field
                        // must fail to compile here, not silently
                        // escape the fingerprint.
                        let crate::event::AppRequest {
                            app,
                            treq_factor,
                            threshold_c,
                        } = req;
                        h.u64(0);
                        h.u64(app as u64);
                        h.f64(treq_factor);
                        h.opt_f64(threshold_c);
                    }
                    crate::event::ScenarioEvent::AmbientChange { ambient_c } => {
                        h.u64(1);
                        h.f64(ambient_c);
                    }
                    crate::event::ScenarioEvent::ThresholdChange { threshold_c } => {
                        h.u64(2);
                        h.f64(threshold_c);
                    }
                    crate::event::ScenarioEvent::ApproachChange { approach } => {
                        h.u64(3);
                        h.u64(approach as u64);
                    }
                }
            }
        }
        h.u64(self.approaches.len() as u64);
        for a in &self.approaches {
            h.u64(*a as u64);
        }
        h.u64(self.contentions.len() as u64);
        for c in &self.contentions {
            match c {
                ContentionPolicy::Serial => h.u64(0),
                ContentionPolicy::ClusterExclusive => h.u64(1),
                ContentionPolicy::Shared { max_apps } => {
                    h.u64(2);
                    h.u64(*max_apps as u64);
                }
            }
        }
        let axis = |h: &mut Fnv, v: &Option<Vec<f64>>| match v {
            Some(vals) => {
                h.u64(1 + vals.len() as u64);
                for &x in vals {
                    h.f64(x);
                }
            }
            None => h.u64(0),
        };
        axis(&mut h, &self.thresholds_c);
        axis(&mut h, &self.ambients_c);
        match &self.tunables {
            Some(ts) => {
                h.u64(1 + ts.len() as u64);
                for t in ts {
                    let TeemTunables {
                        delta_mhz,
                        floor,
                        threshold_c,
                    } = *t;
                    h.u64(u64::from(delta_mhz));
                    h.u64(u64::from(floor.0));
                    h.opt_f64(threshold_c);
                }
            }
            None => h.u64(0),
        }
        let idle = |h: &mut Fnv, p: IdlePolicy| match p {
            IdlePolicy::RaceToIdle => h.u64(0),
            IdlePolicy::TimeoutCollapse { timeout_ms } => {
                h.u64(1);
                h.u64(u64::from(timeout_ms));
            }
        };
        match &self.idle_policies {
            Some(ps) => {
                h.u64(1 + ps.len() as u64);
                for &p in ps {
                    idle(&mut h, p);
                }
            }
            None => h.u64(0),
        }
        match &self.boards {
            Some(bs) => {
                h.u64(1 + bs.len() as u64);
                for &b in bs {
                    match b {
                        BoardSpec::OdroidXu4 => h.u64(0),
                        BoardSpec::ManyNode { nodes } => {
                            h.u64(1);
                            h.u64(u64::from(nodes));
                        }
                    }
                }
            }
            None => h.u64(0),
        }
        // Exhaustive destructuring: adding a physics field to SimConfig
        // breaks this line instead of silently escaping the fingerprint.
        let SimConfig {
            dt_s,
            sample_period_s,
            timeout_s,
            warm_start_fraction,
            idle_policy,
            time_advance,
        } = self.resolved_config();
        h.f64(dt_s);
        h.f64(sample_period_s);
        h.f64(timeout_s);
        h.f64(warm_start_fraction);
        idle(&mut h, idle_policy);
        h.u64(match time_advance {
            TimeAdvance::FixedDt => 0,
            TimeAdvance::EventDriven => 1,
        });
        h.finish()
    }

    /// Total number of cells in the grid (the product of every axis).
    pub fn cells(&self) -> usize {
        self.scenarios.len()
            * self.approaches.len()
            * self.contentions.len()
            * self.thresholds_c.as_ref().map_or(1, Vec::len)
            * self.ambients_c.as_ref().map_or(1, Vec::len)
            * self.tunables.as_ref().map_or(1, Vec::len)
            * self.idle_policies.as_ref().map_or(1, Vec::len)
            * self.boards.as_ref().map_or(1, Vec::len)
    }

    /// Materialises the cell at `index` (lazy: nothing about a cell
    /// exists until this is called). Axis nesting, outermost to
    /// innermost: scenario, board, threshold, ambient, contention,
    /// idle policy, tunables, approach — so a plain scenario ×
    /// approach sweep is scenario-major with approaches adjacent,
    /// exactly the pre-refactor matrix order, and same-board cells
    /// stay contiguous for the lockstep pool.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.cells()`.
    pub fn cell(&self, index: usize) -> SweepCell {
        assert!(index < self.cells(), "cell {index} out of range");
        let mut rest = index;
        let pick = |rest: &mut usize, n: usize| {
            let i = *rest % n;
            *rest /= n;
            i
        };
        let approach = self.approaches[pick(&mut rest, self.approaches.len())];
        let tunables = match &self.tunables {
            Some(ts) => ts[pick(&mut rest, ts.len())],
            None => TeemTunables::paper(),
        };
        let idle_policy = self
            .idle_policies
            .as_ref()
            .map(|ps| ps[pick(&mut rest, ps.len())]);
        let contention = self.contentions[pick(&mut rest, self.contentions.len())];
        let ambient_c = self
            .ambients_c
            .as_ref()
            .map(|a| a[pick(&mut rest, a.len())]);
        let threshold_c = self
            .thresholds_c
            .as_ref()
            .map(|t| t[pick(&mut rest, t.len())]);
        let board = match &self.boards {
            Some(bs) => bs[pick(&mut rest, bs.len())],
            None => BoardSpec::OdroidXu4,
        };
        let scenario_index = rest;

        let mut tags: Vec<String> = Vec::new();
        if self.boards.is_some() {
            tags.push(board.label());
        }
        if let Some(t) = threshold_c {
            tags.push(format!("thr{t}"));
        }
        if let Some(a) = ambient_c {
            tags.push(format!("amb{a}"));
        }
        if self.contentions.len() > 1 {
            tags.push(contention.name().to_string());
        }
        if let Some(p) = idle_policy {
            tags.push(match p {
                IdlePolicy::RaceToIdle => "race".to_string(),
                IdlePolicy::TimeoutCollapse { timeout_ms } => {
                    format!("collapse{timeout_ms}ms")
                }
            });
        }
        if self.tunables.is_some() {
            tags.push(tunables.label());
        }
        let base = self.scenarios[scenario_index].name();
        let name = if tags.is_empty() {
            base.to_string()
        } else {
            format!("{base}@{}", tags.join("/"))
        };

        SweepCell {
            index,
            name,
            approach,
            contention,
            threshold_c,
            ambient_c,
            tunables,
            idle_policy,
            board,
            scenario_index,
        }
    }

    /// The configuration every cell starts from: the base (default:
    /// [`ScenarioRunner::default_config`]) with the patch applied. A
    /// cell's idle-policy axis value overrides this per cell.
    pub fn resolved_config(&self) -> SimConfig {
        self.patch.apply(
            self.base_config
                .unwrap_or_else(ScenarioRunner::default_config),
        )
    }

    /// Runs the whole grid, handing every [`SweepEvent`] to `sink` on
    /// the calling thread as cells finish — completion order, not grid
    /// order. The engine retains no results, and the event channel is
    /// **bounded** (2 × workers): a sink slower than the workers blocks
    /// them instead of queueing results, so peak resident result state
    /// stays O(workers) no matter the grid or consumer speed.
    ///
    /// Cell failures (including caught panics) become
    /// [`SweepEvent::CellFailed`] and the sweep drains the remaining
    /// cells; the terminal [`SweepEvent::Finished`] carries the failure
    /// count.
    ///
    /// # Errors
    ///
    /// [`SweepError::Profiling`] if an app in the grid cannot be
    /// profiled — detected up front, before any cell runs.
    pub fn run_streaming(&self, sink: impl FnMut(SweepEvent)) -> Result<SweepRunStats, SweepError> {
        self.run_inner(sink, None)
    }

    /// [`SweepSpec::run_streaming`] with the observability plane on:
    /// every worker collects scheduler counters, a per-cell wall-time
    /// histogram, busy/idle time and a Chrome-trace track, and every
    /// cell runs with step-loop timing enabled
    /// ([`ScenarioRunner::with_step_timing`]). Returns the stats plus a
    /// [`SweepObsReport`] (metrics registry + trace-event log).
    ///
    /// Instrumentation is observation-only: cell results, digests and
    /// journal records are bit-identical to an uninstrumented run (the
    /// golden-digest tests pin this).
    ///
    /// # Errors
    ///
    /// As [`SweepSpec::run_streaming`].
    pub fn run_instrumented(
        &self,
        sink: impl FnMut(SweepEvent),
    ) -> Result<(SweepRunStats, SweepObsReport), SweepError> {
        let obs = RunObs::new();
        let stats = self.run_inner(sink, Some(&obs))?;
        let report = SweepObsReport::assemble(obs.into_workers(), &stats);
        Ok((stats, report))
    }

    fn run_inner(
        &self,
        mut sink: impl FnMut(SweepEvent),
        obs: Option<&RunObs>,
    ) -> Result<SweepRunStats, SweepError> {
        let wall_t0 = Instant::now();
        let grid = self.cells();
        // The work list: cell indices minus the skip set. The identity
        // case (no skips — every non-resumed sweep) stays lazy and
        // allocation-free; a resume holds one index per *remaining*
        // cell, which is exactly the work it still owes.
        let run_list: Option<Vec<usize>> = if self.skip.is_empty() {
            None
        } else {
            Some((0..grid).filter(|i| !self.skip.contains(i)).collect())
        };
        let total = run_list.as_ref().map_or(grid, Vec::len);
        let skipped = grid - total;
        let to_index = |pos: usize| run_list.as_ref().map_or(pos, |l| l[pos]);
        if total == 0 {
            sink(SweepEvent::Finished {
                cells: 0,
                failed: 0,
            });
            return Ok(SweepRunStats {
                cells: 0,
                completed: 0,
                failed: 0,
                skipped,
                wall: wall_t0.elapsed(),
            });
        }

        // Profile every app once, up front, shared with every worker.
        let apps: BTreeSet<App> = self.scenarios.iter().flat_map(Scenario::apps).collect();
        let profiles = cached_profiles(apps)?;
        let config = self.resolved_config();
        let workers = self.threads.min(total);

        let mut completed = 0usize;
        let mut failed = 0usize;

        if workers <= 1 {
            // Sequential: cell-index order, same failure handling. The
            // instrumented run collects into one pseudo-worker (track 0).
            let mut wobs = obs.map(|o| WorkerObs::new(0, o.epoch));
            if let Some(k) = self.batch {
                // Batched sequential: K lockstep lanes on this thread,
                // claims drained in cell-index order. This is the path
                // the single-core throughput bench exercises.
                let mut pos = 0usize;
                let mut next = |_: &mut Option<WorkerObs>| {
                    if pos < total {
                        let i = to_index(pos);
                        pos += 1;
                        Some(i)
                    } else {
                        None
                    }
                };
                let mut emit = |ev: SweepEvent| {
                    match &ev {
                        SweepEvent::CellDone { .. } => completed += 1,
                        SweepEvent::CellFailed { .. } => failed += 1,
                        _ => {}
                    }
                    sink(ev);
                    true
                };
                self.batched_worker_loop(k, &profiles, config, &mut wobs, &mut next, &mut emit);
            } else {
                for pos in 0..total {
                    let index = to_index(pos);
                    let cell = self.cell(index);
                    sink(SweepEvent::CellStarted {
                        index,
                        name: cell.name.clone(),
                        approach: cell.approach,
                    });
                    let busy_t0 = wobs.as_ref().map(|_| Instant::now());
                    let outcome = self.run_cell(&cell, &profiles, config, wobs.is_some());
                    if let (Some(w), Some(t0)) = (wobs.as_mut(), busy_t0) {
                        w.observe_cell(&cell.name, index, t0, &outcome);
                    }
                    match outcome {
                        Ok(result) => {
                            completed += 1;
                            sink(SweepEvent::CellDone {
                                cell,
                                result: Box::new(result),
                            });
                        }
                        Err(message) => {
                            failed += 1;
                            sink(SweepEvent::CellFailed {
                                index,
                                name: cell.name,
                                message,
                            });
                        }
                    }
                }
            }
            if let (Some(w), Some(o)) = (wobs, obs) {
                o.collected
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(w);
            }
        } else {
            // Work-stealing pool: a shared injector of chunks, one
            // claimed (start, end) range per worker, thieves take the
            // back half of the fullest claim. No lock is ever held
            // while a cell runs, and no two range locks are held at
            // once, so a panicking cell cannot poison shared state.
            let chunk = self.chunk.unwrap_or_else(|| {
                let base = total.div_ceil(workers * 4).clamp(1, 32);
                // In batch mode, round up to a multiple of the lane
                // count so a fresh chunk fills a whole lockstep pool
                // (see the `chunk()` doc).
                match self.batch {
                    Some(k) if k > 1 => base.div_ceil(k) * k,
                    _ => base,
                }
            });
            let injector: Mutex<VecDeque<(usize, usize)>> = Mutex::new(
                (0..total)
                    .step_by(chunk)
                    .map(|s| (s, (s + chunk).min(total)))
                    .collect(),
            );
            let claims: Vec<Mutex<(usize, usize)>> =
                (0..workers).map(|_| Mutex::new((0, 0))).collect();
            let claimed = std::sync::atomic::AtomicUsize::new(0);
            // Bounded channel = backpressure: when the sink is slower
            // than the workers, producers block on `send` instead of
            // queueing results, so the O(workers) resident-result
            // guarantee holds no matter how slow the consumer is (2×
            // workers leaves each worker one slot of slack before it
            // parks). The sink loop below never blocks on the workers,
            // so the bound cannot deadlock.
            let (tx, rx) = mpsc::sync_channel::<SweepEvent>(workers * 2);

            std::thread::scope(|scope| {
                for me in 0..workers {
                    let tx = tx.clone();
                    let injector = &injector;
                    let claims = &claims;
                    let claimed = &claimed;
                    let profiles = &profiles;
                    let to_index = &to_index;
                    scope.spawn(move || {
                        let mut wobs = obs.map(|o| WorkerObs::new(me, o.epoch));
                        if let Some(k) = self.batch {
                            // Batched worker: same claim/steal stream,
                            // but cells feed this worker's K-lane
                            // lockstep pool instead of running one at
                            // a time.
                            let mut next = |w: &mut Option<WorkerObs>| {
                                let idle_t0 = w.as_ref().map(|_| Instant::now());
                                let n = next_cell(
                                    me,
                                    injector,
                                    claims,
                                    claimed,
                                    total,
                                    w.as_mut().map(|x| &mut x.pool),
                                );
                                if let (Some(x), Some(t0)) = (w.as_mut(), idle_t0) {
                                    x.bank_idle(t0);
                                }
                                n.map(to_index)
                            };
                            let mut emit = |ev: SweepEvent| tx.send(ev).is_ok();
                            self.batched_worker_loop(
                                k, profiles, config, &mut wobs, &mut next, &mut emit,
                            );
                            if let (Some(w), Some(o)) = (wobs, obs) {
                                o.collected
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .push(w);
                            }
                            return;
                        }
                        // The claim structure schedules work-list
                        // *positions*; `to_index` maps a position to
                        // its grid index (the identity unless cells
                        // are skipped for a resume).
                        loop {
                            let idle_t0 = wobs.as_ref().map(|_| Instant::now());
                            let next = next_cell(
                                me,
                                injector,
                                claims,
                                claimed,
                                total,
                                wobs.as_mut().map(|w| &mut w.pool),
                            );
                            if let (Some(w), Some(t0)) = (wobs.as_mut(), idle_t0) {
                                w.bank_idle(t0);
                            }
                            let Some(pos) = next else { break };
                            let index = to_index(pos);
                            let cell = self.cell(index);
                            // A failed send means the receiver is gone —
                            // the sink panicked mid-sweep. Stop claiming
                            // cells instead of silently simulating the
                            // rest of the grid into a closed channel.
                            let started = tx.send(SweepEvent::CellStarted {
                                index,
                                name: cell.name.clone(),
                                approach: cell.approach,
                            });
                            if started.is_err() {
                                break;
                            }
                            let busy_t0 = wobs.as_ref().map(|_| Instant::now());
                            let outcome = self.run_cell(&cell, profiles, config, wobs.is_some());
                            if let (Some(w), Some(t0)) = (wobs.as_mut(), busy_t0) {
                                w.observe_cell(&cell.name, index, t0, &outcome);
                            }
                            let event = match outcome {
                                Ok(result) => SweepEvent::CellDone {
                                    cell,
                                    result: Box::new(result),
                                },
                                Err(message) => SweepEvent::CellFailed {
                                    index,
                                    name: cell.name,
                                    message,
                                },
                            };
                            if tx.send(event).is_err() {
                                break;
                            }
                        }
                        if let (Some(w), Some(o)) = (wobs, obs) {
                            o.collected
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(w);
                        }
                    });
                }
                drop(tx); // the receiver loop ends when every worker has
                for event in rx {
                    match &event {
                        SweepEvent::CellDone { .. } => completed += 1,
                        SweepEvent::CellFailed { .. } => failed += 1,
                        _ => {}
                    }
                    sink(event);
                }
            });
        }

        let wall = wall_t0.elapsed();
        sink(SweepEvent::Finished {
            cells: total,
            failed,
        });
        Ok(SweepRunStats {
            cells: total,
            completed,
            failed,
            skipped,
            wall,
        })
    }

    /// Convenience for small grids: runs the sweep and returns every
    /// executed result **buffered in cell-index order** — O(cells)
    /// memory by construction; big grids should stream instead.
    /// Skipped cells (a resumed spec) are simply absent from the
    /// output.
    ///
    /// # Errors
    ///
    /// [`SweepError::Profiling`] as [`SweepSpec::run_streaming`], or
    /// [`SweepError::Cell`] naming the first failed cell (the sweep
    /// still drained the others first).
    pub fn run_collect(&self) -> Result<Vec<ScenarioResult>, SweepError> {
        let mut slots: Vec<Option<ScenarioResult>> = (0..self.cells()).map(|_| None).collect();
        let mut failure: Option<SweepError> = None;
        self.run_streaming(|event| match event {
            SweepEvent::CellDone { cell, result } => slots[cell.index] = Some(*result),
            SweepEvent::CellFailed { name, message, .. } if failure.is_none() => {
                failure = Some(SweepError::Cell {
                    cell: name,
                    message,
                });
            }
            _ => {}
        })?;
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !self.skip.contains(i))
            .map(|(_, r)| r.expect("every non-skipped cell streamed exactly once"))
            .collect())
    }

    /// Materialises the cell's scenario (name, threshold, ambient
    /// overrides) and builds its configured runner — the shared front
    /// half of both execution paths.
    fn make_cell_runner(
        &self,
        cell: &SweepCell,
        profiles: &Arc<ProfileStore>,
        config: SimConfig,
        instrument: bool,
    ) -> (ScenarioRunner, Scenario) {
        let mut scenario = self.scenarios[cell.scenario_index].clone();
        if cell.name != scenario.name() {
            scenario = scenario.with_name(cell.name.clone());
        }
        if let Some(t) = cell.threshold_c {
            scenario = scenario.with_initial_threshold(t);
        }
        if let Some(a) = cell.ambient_c {
            scenario = scenario.with_initial_ambient(a);
        }
        let mut cfg = config;
        if let Some(p) = cell.idle_policy {
            cfg.idle_policy = p;
        }
        let runner = ScenarioRunner::with_shared_profiles(cell.approach, Arc::clone(profiles))
            .with_contention(cell.contention)
            .with_tunables(cell.tunables)
            .with_board(cell.board)
            .with_sample_staging(self.sample_staging)
            .with_config(cfg)
            .with_step_timing(instrument);
        (runner, scenario)
    }

    /// Executes one cell: materialise the scenario, build its runner,
    /// run it with the panic caught on this worker.
    fn run_cell(
        &self,
        cell: &SweepCell,
        profiles: &Arc<ProfileStore>,
        config: SimConfig,
        instrument: bool,
    ) -> Result<ScenarioResult, String> {
        let (mut runner, scenario) = self.make_cell_runner(cell, profiles, config, instrument);
        match std::panic::catch_unwind(AssertUnwindSafe(|| runner.run(&scenario))) {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(e)) => Err(e.to_string()),
            // `&*payload`, not `&payload`: coercing `&Box<dyn Any>`
            // would downcast against the box itself and lose the text.
            Err(payload) => Err(format!("panicked: {}", panic_message(&*payload))),
        }
    }

    /// Starts one cell for the batched path: prepare it and step it on
    /// the scalar loop until it becomes lockstep-eligible (panic
    /// caught). A short cell may finish during warm-up; that is just a
    /// scalar cell and comes back as its result.
    fn start_cell_for_batch(
        &self,
        cell: &SweepCell,
        profiles: &Arc<ProfileStore>,
        config: SimConfig,
        instrument: bool,
    ) -> BatchStart {
        let (mut runner, scenario) = self.make_cell_runner(cell, profiles, config, instrument);
        let warmup = std::panic::catch_unwind(AssertUnwindSafe(
            move || -> Result<BatchStart, teem_linreg::LinregError> {
                let mut sim = runner.prepare_cell(&scenario)?;
                loop {
                    if crate::lockstep::eligible_for_lockstep(&sim) {
                        return Ok(BatchStart::Eligible(Box::new((runner, sim))));
                    }
                    if !runner.step_cell(&mut sim)? {
                        return Ok(BatchStart::Done(Box::new(runner.finish_cell(sim))));
                    }
                }
            },
        ));
        match warmup {
            Ok(Ok(start)) => start,
            Ok(Err(e)) => BatchStart::Failed(e.to_string()),
            Err(payload) => BatchStart::Failed(format!("panicked: {}", panic_message(&*payload))),
        }
    }

    /// The batched worker loop: claim cells through `next`, warm them
    /// up to lockstep eligibility, run lockstep rounds over a K-lane
    /// pool, finish retiring cells on the scalar path, and refill freed
    /// lanes — shared verbatim by the sequential (`threads(1)`) and
    /// pooled branches, which differ only in their `next`/`emit`
    /// closures. `emit` returns `false` when the event consumer is gone
    /// (pooled mode: the channel closed), which stops the loop.
    fn batched_worker_loop(
        &self,
        k: usize,
        profiles: &Arc<ProfileStore>,
        config: SimConfig,
        wobs: &mut Option<WorkerObs>,
        next: &mut dyn FnMut(&mut Option<WorkerObs>) -> Option<usize>,
        emit: &mut dyn FnMut(SweepEvent) -> bool,
    ) {
        let reference = Board::odroid_xu4_ideal();
        let mut pool = LockstepPool::new(k, &reference.thermal, wobs.is_some());
        // Claim-order bookkeeping for cells resident in the pool,
        // keyed by cell index (≤ K entries; linear scans are fine).
        let mut in_flight: Vec<(usize, SweepCell, Option<Instant>)> = Vec::new();
        let mut retired = Vec::new();
        let mut dry = false; // `next` ran out of cells
        let mut dead = false; // `emit` reported a gone consumer

        'outer: loop {
            // Fill free lanes from the claim stream.
            while !dry && !dead && pool.has_free_lane() {
                let Some(index) = next(wobs) else {
                    dry = true;
                    break;
                };
                let cell = self.cell(index);
                if !emit(SweepEvent::CellStarted {
                    index,
                    name: cell.name.clone(),
                    approach: cell.approach,
                }) {
                    dead = true;
                    break;
                }
                let started = wobs.as_ref().map(|_| Instant::now());
                let start = self.start_cell_for_batch(&cell, profiles, config, wobs.is_some());
                if let (Some(w), Some(t0)) = (wobs.as_mut(), started) {
                    w.bank_busy(t0);
                }
                match start {
                    BatchStart::Eligible(boxed) => {
                        let (runner, sim) = *boxed;
                        // Board-axis boundary: same-board cells are
                        // contiguous in the grid, so when the pool has
                        // drained and the next cell's topology differs,
                        // rebuild the SoA batch for the new board
                        // (folding the old pool's counters first)
                        // instead of degrading its cells to scalar.
                        if pool.is_empty() && !pool.matches_topology(&sim.board.thermal) {
                            fold_pool_obs(wobs, &pool);
                            pool = LockstepPool::new(k, &sim.board.thermal, wobs.is_some());
                        }
                        match pool.admit(runner, sim, index) {
                            Ok(()) => in_flight.push((index, cell, started)),
                            Err((runner, sim, _)) => {
                                // Topology or dt mismatch with the pool:
                                // degrade this cell to scalar.
                                let busy_t0 = wobs.as_ref().map(|_| Instant::now());
                                let outcome = finish_scalar(runner, sim);
                                if let Some(w) = wobs.as_mut() {
                                    if let Some(t0) = busy_t0 {
                                        w.bank_busy(t0);
                                    }
                                    w.observe_batched_cell(
                                        &cell.name,
                                        index,
                                        started.unwrap_or_else(Instant::now),
                                        &outcome,
                                    );
                                }
                                if !emit_outcome(emit, cell, outcome) {
                                    dead = true;
                                }
                            }
                        }
                    }
                    BatchStart::Done(result) => {
                        let outcome = Ok(*result);
                        if let Some(w) = wobs.as_mut() {
                            w.observe_batched_cell(
                                &cell.name,
                                index,
                                started.unwrap_or_else(Instant::now),
                                &outcome,
                            );
                        }
                        if !emit_outcome(emit, cell, outcome) {
                            dead = true;
                        }
                    }
                    BatchStart::Failed(message) => {
                        let outcome = Err(message);
                        if let Some(w) = wobs.as_mut() {
                            w.observe_batched_cell(
                                &cell.name,
                                index,
                                started.unwrap_or_else(Instant::now),
                                &outcome,
                            );
                        }
                        if !emit_outcome(emit, cell, outcome) {
                            dead = true;
                        }
                    }
                }
            }
            if pool.is_empty() && (dry || dead) {
                break 'outer;
            }
            if dead {
                // Consumer gone with cells still in flight: drop them,
                // like the scalar loop drops an unsendable result.
                break 'outer;
            }
            if pool.is_empty() {
                continue 'outer;
            }

            // One lockstep round, panic-isolated: a panicking manager
            // or model must cost its own cells a scalar re-run, not the
            // grid. Lanes retired before the panic left the pool at
            // valid phase boundaries and finish normally.
            let busy_t0 = wobs.as_ref().map(|_| Instant::now());
            let round =
                std::panic::catch_unwind(AssertUnwindSafe(|| pool.step_round(&mut retired)));
            if let (Some(w), Some(t0)) = (wobs.as_mut(), busy_t0) {
                w.bank_busy(t0);
            }
            if round.is_err() {
                // Mid-round state is not a valid scalar boundary; the
                // stuck cells re-run from scratch on the scalar path
                // (a deterministic panic reproduces there and fails the
                // cell with its payload; CellStarted was already sent).
                for token in pool.evict_all() {
                    let pos = in_flight
                        .iter()
                        .position(|(t, _, _)| *t == token)
                        .expect("evicted lane was in flight");
                    let (index, cell, started) = in_flight.remove(pos);
                    let busy_t0 = wobs.as_ref().map(|_| Instant::now());
                    let outcome = self.run_cell(&cell, profiles, config, wobs.is_some());
                    if let Some(w) = wobs.as_mut() {
                        if let Some(t0) = busy_t0 {
                            w.bank_busy(t0);
                        }
                        w.observe_batched_cell(
                            &cell.name,
                            index,
                            started.unwrap_or_else(Instant::now),
                            &outcome,
                        );
                    }
                    if !emit_outcome(emit, cell, outcome) {
                        dead = true;
                    }
                }
            }

            // Finish every retired lane on the scalar path. A lane that
            // completed in-pool terminates on its first step_cell call,
            // so completion and divergence share this code.
            for r in retired.drain(..) {
                let pos = in_flight
                    .iter()
                    .position(|(t, _, _)| *t == r.token)
                    .expect("retired lane was in flight");
                let (index, cell, started) = in_flight.remove(pos);
                let steps_at_entry = r.steps_at_entry;
                let busy_t0 = wobs.as_ref().map(|_| Instant::now());
                let outcome = finish_scalar(r.runner, r.sim);
                if let Some(w) = wobs.as_mut() {
                    if let Some(t0) = busy_t0 {
                        w.bank_busy(t0);
                    }
                    if let Ok(result) = &outcome {
                        let in_pool = result.kernel.steps.saturating_sub(steps_at_entry);
                        w.record_lane_occupancy(result.kernel.batched_steps, in_pool);
                    }
                    w.observe_batched_cell(
                        &cell.name,
                        index,
                        started.unwrap_or_else(Instant::now),
                        &outcome,
                    );
                }
                if !emit_outcome(emit, cell, outcome) {
                    dead = true;
                }
            }
        }

        // Fold the pool's counters into the worker's collector.
        fold_pool_obs(wobs, &pool);
    }
}

/// The shared offline-profile store for an app set, memoised across
/// sweeps: profiling is deterministic (the regression observations are
/// simulated on the canonical ideal board, the same board every
/// [`SweepSpec::run_streaming`] profiles against), so repeated sweeps —
/// benches, examples, test suites, resumed campaigns — reuse one store
/// instead of re-simulating the observation set per call.
fn cached_profiles(apps: BTreeSet<App>) -> Result<Arc<ProfileStore>, SweepError> {
    static CACHE: Mutex<Vec<(BTreeSet<App>, Arc<ProfileStore>)>> = Mutex::new(Vec::new());
    let mut cache = CACHE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some((_, store)) = cache.iter().find(|(k, _)| *k == apps) {
        return Ok(Arc::clone(store));
    }
    let store = build_profile_store(&Board::odroid_xu4_ideal(), apps.iter().copied())
        .map_err(SweepError::Profiling)?
        .into_shared();
    cache.push((apps, Arc::clone(&store)));
    Ok(store)
}

/// Folds a lockstep pool's counters into the worker's collector — at
/// worker exit, and before a board-boundary pool rebuild discards the
/// old pool.
fn fold_pool_obs(wobs: &mut Option<WorkerObs>, pool: &LockstepPool) {
    if let Some(w) = wobs.as_mut() {
        w.kernel.merge(&pool.obs);
        w.batch_rounds += pool.rounds;
        w.batch_lane_steps += pool.lane_steps;
        w.batch_lane_slots += pool.lane_slots;
    }
}

/// How a cell came out of its batched warm-up.
enum BatchStart {
    /// Lockstep-eligible: the suspended simulation, ready to admit.
    Eligible(Box<(ScenarioRunner, crate::exec::CellSim)>),
    /// Finished during warm-up (a short or never-eligible cell).
    Done(Box<ScenarioResult>),
    /// Failed or panicked during warm-up.
    Failed(String),
}

/// Drives a suspended cell to completion on the scalar path, panics
/// caught. A cell whose timeline already completed in-pool terminates
/// on the first `step_cell` call, so completion and divergence share
/// this one exit.
fn finish_scalar(
    mut runner: ScenarioRunner,
    mut sim: crate::exec::CellSim,
) -> Result<ScenarioResult, String> {
    let run = move || -> Result<ScenarioResult, teem_linreg::LinregError> {
        loop {
            if !runner.step_cell(&mut sim)? {
                return Ok(runner.finish_cell(sim));
            }
        }
    };
    match std::panic::catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("panicked: {}", panic_message(&*payload))),
    }
}

/// Sends a finished cell's outcome as the right event; `false` when the
/// consumer is gone.
fn emit_outcome(
    emit: &mut dyn FnMut(SweepEvent) -> bool,
    cell: SweepCell,
    outcome: Result<ScenarioResult, String>,
) -> bool {
    match outcome {
        Ok(result) => emit(SweepEvent::CellDone {
            cell,
            result: Box::new(result),
        }),
        Err(message) => emit(SweepEvent::CellFailed {
            index: cell.index,
            name: cell.name,
            message,
        }),
    }
}

/// Claims the next cell for worker `me`: own range first, then a fresh
/// injector chunk, then steal the back half of the fullest sibling
/// claim. Returns `None` only once every cell has been claimed
/// (`claimed == total`), so a worker can never exit while a sibling
/// still holds unclaimed cells in a transient unpublished window — it
/// yields and rescans instead.
///
/// Lock discipline: the injector is only ever locked *under* the
/// worker's own claim lock (so a popped chunk is never invisible to
/// thieves), the steal path locks the victim and the thief's own claim
/// strictly one after the other, and no lock is held while a cell
/// runs — deadlock-free, and a cell panic cannot poison the claim
/// structure.
fn next_cell(
    me: usize,
    injector: &Mutex<VecDeque<(usize, usize)>>,
    claims: &[Mutex<(usize, usize)>],
    claimed: &std::sync::atomic::AtomicUsize,
    total: usize,
    mut obs: Option<&mut PoolObs>,
) -> Option<usize> {
    use std::sync::atomic::Ordering;
    let take = || claimed.fetch_add(1, Ordering::Relaxed);
    loop {
        // 1. Own claim, refilled from the injector while still held:
        //    a chunk moves atomically (to observers) from the injector
        //    into this claim, so thieves scanning claims after finding
        //    the injector empty cannot miss it.
        {
            let mut own = claims[me].lock().expect("no cell runs under this lock");
            if own.0 < own.1 {
                let i = own.0;
                own.0 += 1;
                take();
                return Some(i);
            }
            let mut queue = injector.lock().expect("no cell runs under this lock");
            if let Some(o) = obs.as_deref_mut() {
                o.queue_depth.record(queue.len() as u64);
            }
            let fresh = queue.pop_front();
            drop(queue);
            if let Some((start, end)) = fresh {
                if let Some(o) = obs.as_deref_mut() {
                    o.injector_refills += 1;
                }
                *own = (start + 1, end);
                take();
                return Some(start);
            }
        }
        // 2. Steal: scan for the fullest sibling claim, take its back
        //    half.
        if let Some(o) = obs.as_deref_mut() {
            o.steal_attempts += 1;
        }
        let mut victim: Option<(usize, usize)> = None; // (worker, len)
        for (w, claim) in claims.iter().enumerate() {
            if w == me {
                continue;
            }
            let r = claim.lock().expect("no cell runs under this lock");
            let len = r.1 - r.0;
            if len > victim.map_or(0, |(_, l)| l) {
                victim = Some((w, len));
            }
        }
        if let Some((w, _)) = victim {
            let stolen = {
                let mut r = claims[w].lock().expect("no cell runs under this lock");
                let len = r.1 - r.0;
                if len == 0 {
                    continue; // raced with the victim; rescan
                }
                let keep = len / 2;
                let stolen = (r.0 + keep, r.1);
                r.1 = stolen.0;
                stolen
            };
            if let Some(o) = obs.as_deref_mut() {
                o.steal_successes += 1;
                o.steal_sizes.record((stolen.1 - stolen.0) as u64);
            }
            let mut own = claims[me].lock().expect("no cell runs under this lock");
            *own = (stolen.0 + 1, stolen.1);
            take();
            return Some(stolen.0);
        }
        // 3. Nothing visible. Exit only when every cell has been
        //    claimed; otherwise a thief is mid-publish — yield and
        //    rescan.
        if claimed.load(Ordering::Relaxed) >= total {
            return None;
        }
        std::thread::yield_now();
    }
}

/// Best-effort human-readable panic payload. `panic!` and most code
/// produce `&'static str` or `String`; `panic_any` callers also throw
/// `Box<str>` and `Cow<'static, str>`, so those are unwrapped too —
/// anything else keeps its type name so the [`SweepEvent::CellFailed`]
/// message is never an empty shrug.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<Box<str>>() {
        s.to_string()
    } else if let Some(s) = payload.downcast_ref::<std::borrow::Cow<'static, str>>() {
        s.to_string()
    } else {
        format!("non-string panic payload ({:?})", payload.type_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AppRequest, ScenarioEvent};
    use teem_soc::MHz;

    fn two_scenarios() -> Vec<Scenario> {
        vec![
            Scenario::new("a").arrive(0.0, App::Mvt, 0.9),
            Scenario::new("b").arrive(0.0, App::Gesummv, 0.9),
        ]
    }

    #[test]
    fn cell_count_is_the_axis_product() {
        let spec = SweepSpec::over(two_scenarios())
            .approaches(&[Approach::Teem, Approach::Ondemand])
            .thresholds_c(&[80.0, 85.0, 90.0])
            .ambients_c(&[20.0, 30.0]);
        assert_eq!(spec.cells(), 2 * 2 * 3 * 2);
    }

    #[test]
    fn enumeration_is_scenario_major_with_approach_innermost() {
        let spec =
            SweepSpec::over(two_scenarios()).approaches(&[Approach::Teem, Approach::Ondemand]);
        assert_eq!(spec.cells(), 4);
        let names: Vec<(String, Approach)> = (0..4)
            .map(|i| {
                let c = spec.cell(i);
                (c.name, c.approach)
            })
            .collect();
        assert_eq!(names[0], ("a".to_string(), Approach::Teem));
        assert_eq!(names[1], ("a".to_string(), Approach::Ondemand));
        assert_eq!(names[2], ("b".to_string(), Approach::Teem));
        assert_eq!(names[3], ("b".to_string(), Approach::Ondemand));
    }

    #[test]
    fn no_extra_axes_means_untouched_scenario_names() {
        let spec = SweepSpec::over(two_scenarios());
        assert_eq!(spec.cell(0).name, "a", "no knob tags without knob axes");
        assert_eq!(spec.cell(0).tunables, TeemTunables::paper());
        assert_eq!(spec.cell(0).threshold_c, None);
    }

    #[test]
    fn knob_axes_tag_the_cell_names() {
        let spec = SweepSpec::over(two_scenarios())
            .thresholds_c(&[82.0])
            .ambients_c(&[30.0])
            .tunables(&[TeemTunables::paper().with_delta(100).with_floor(MHz(1000))]);
        let c = spec.cell(0);
        assert_eq!(c.name, "a@thr82/amb30/d100/f1000");
    }

    #[test]
    #[should_panic(expected = "plausible")]
    fn threshold_axis_is_validated_up_front() {
        let _ = SweepSpec::over(two_scenarios()).thresholds_c(&[500.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate physics")]
    fn dead_threshold_axis_is_rejected() {
        // Every knob set overrides the threshold, so the thresholds
        // axis could only clone cells under different names.
        let _ = SweepSpec::over(two_scenarios())
            .thresholds_c(&[80.0, 85.0])
            .tunables(&[
                TeemTunables::paper().with_threshold(82.0),
                TeemTunables::paper().with_threshold(88.0),
            ]);
    }

    #[test]
    fn threshold_axis_with_partially_overriding_knobs_is_allowed() {
        // One knob set keeps the requirement's threshold, so the axis
        // still changes physics for those cells.
        let spec = SweepSpec::over(two_scenarios())
            .thresholds_c(&[80.0, 85.0])
            .tunables(&[
                TeemTunables::paper(),
                TeemTunables::paper().with_threshold(82.0),
            ]);
        assert_eq!(spec.cells(), 2 * 2 * 2);
    }

    #[test]
    fn panicking_sink_stops_the_workers_early() {
        // A sink panic drops the receiver; workers must stop claiming
        // cells instead of simulating the rest of the grid into a
        // closed channel.
        let spec = SweepSpec::over(two_scenarios())
            .approaches(&[Approach::Teem, Approach::Ondemand])
            .thresholds_c(&[80.0, 82.0, 84.0, 86.0])
            .threads(2)
            .chunk(1);
        let spec_ref = &spec;
        let ran = std::sync::Mutex::new(0usize);
        let ran_ref = &ran;
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            spec_ref
                .run_streaming(|ev| {
                    if let SweepEvent::CellDone { .. } = ev {
                        *ran_ref.lock().unwrap() += 1;
                        panic!("sink gave up");
                    }
                })
                .expect("profiling fine")
        }));
        assert!(result.is_err(), "the sink panic must propagate");
        // The panic unwound on the first completed cell; the workers
        // cannot have streamed the whole 16-cell grid afterwards (at
        // most the cells already in flight or queued drain).
        assert!(*ran.lock().unwrap() <= 1, "sink ran after its own panic");
    }

    #[test]
    fn empty_grid_finishes_immediately() {
        let spec = SweepSpec::over([]);
        let mut events = 0;
        let stats = spec
            .run_streaming(|ev| {
                events += 1;
                assert!(matches!(
                    ev,
                    SweepEvent::Finished {
                        cells: 0,
                        failed: 0
                    }
                ));
            })
            .expect("empty grid");
        assert_eq!(events, 1);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn stream_pairs_started_and_done_and_ends_with_finished() {
        let spec = SweepSpec::over(two_scenarios()).threads(2);
        let mut started = vec![false; spec.cells()];
        let mut done = vec![false; spec.cells()];
        let mut finished = false;
        let stats = spec
            .run_streaming(|ev| {
                assert!(!finished, "nothing after Finished");
                match ev {
                    SweepEvent::CellStarted { index, .. } => started[index] = true,
                    SweepEvent::CellDone { cell, result } => {
                        assert!(started[cell.index], "Started precedes Done");
                        assert!(!result.timed_out);
                        done[cell.index] = true;
                    }
                    SweepEvent::CellFailed { .. } => panic!("no cell should fail"),
                    SweepEvent::Finished { cells, failed } => {
                        assert_eq!(cells, 2);
                        assert_eq!(failed, 0);
                        finished = true;
                    }
                }
            })
            .expect("runs");
        assert!(finished);
        assert!(done.iter().all(|&d| d));
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn collect_orders_by_cell_index_across_thread_counts() {
        let spec =
            SweepSpec::over(two_scenarios()).approaches(&[Approach::Teem, Approach::Ondemand]);
        let seq = spec.clone().threads(1).run_collect().expect("runs");
        let par = spec.threads(4).run_collect().expect("runs");
        assert_eq!(seq.len(), 4);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.summary, b.summary);
            assert_eq!(a.trace.digest(), b.trace.digest());
        }
    }

    #[test]
    fn panicking_cell_fails_alone_and_the_rest_drain() {
        // A per-app threshold override far outside the plausible range
        // panics inside the worker (UserRequirement's validation) — the
        // engine must convert it to CellFailed and still run the other
        // cells.
        let poison = Scenario::new("poison").at(
            0.0,
            ScenarioEvent::Arrival(AppRequest::new(App::Mvt, 0.9).with_threshold(500.0)),
        );
        let good = Scenario::new("good").arrive(0.0, App::Mvt, 0.9);
        let spec = SweepSpec::over([poison, good]).threads(2);
        let mut failed_names = Vec::new();
        let mut done_names = Vec::new();
        let stats = spec
            .run_streaming(|ev| match ev {
                SweepEvent::CellFailed { name, message, .. } => {
                    assert!(message.contains("panicked"), "{message}");
                    // The actual panic payload — not a generic shrug —
                    // must reach the event (observability contract).
                    assert!(
                        message.contains("out of plausible range"),
                        "payload text lost: {message}"
                    );
                    failed_names.push(name);
                }
                SweepEvent::CellDone { cell, .. } => done_names.push(cell.name),
                _ => {}
            })
            .expect("profiling still fine");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(failed_names, vec!["poison".to_string()]);
        assert_eq!(done_names, vec!["good".to_string()]);

        // run_collect surfaces the failure as an error naming the cell.
        let err = spec.run_collect().expect_err("poison cell fails");
        let msg = err.to_string();
        assert!(msg.contains("poison"), "{msg}");
    }

    #[test]
    fn panic_message_unwraps_common_payload_types() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(Box::<str>::from("boxed"));
        assert_eq!(panic_message(s.as_ref()), "boxed");
        let s: Box<dyn std::any::Any + Send> =
            Box::new(std::borrow::Cow::<'static, str>::from("cowed"));
        assert_eq!(panic_message(s.as_ref()), "cowed");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert!(panic_message(s.as_ref()).contains("non-string panic payload"));
    }

    #[test]
    fn config_patch_rides_on_scenario_defaults() {
        let cfg = SweepSpec::over(two_scenarios())
            .patch_config(ConfigPatch {
                sample_period_s: Some(0.25),
                ..ConfigPatch::default()
            })
            .resolved_config();
        assert_eq!(cfg.sample_period_s, 0.25);
        assert_eq!(
            cfg.timeout_s, 10_000.0,
            "patch must not lose the scenario-scale timeout"
        );
        assert!(ConfigPatch::default().is_noop());
    }

    #[test]
    fn work_stealing_claims_cover_every_cell_exactly_once() {
        // Pure scheduling check on the claim structure, no simulations:
        // tiny chunks + more workers than chunks forces refills and
        // steals, and every worker stays live until the last cell is
        // claimed (the claimed-counter termination rule).
        let total = 103;
        let chunk = 4;
        let workers = 8;
        let injector: Mutex<VecDeque<(usize, usize)>> = Mutex::new(
            (0..total)
                .step_by(chunk)
                .map(|s| (s, (s + chunk).min(total)))
                .collect(),
        );
        let claims: Vec<Mutex<(usize, usize)>> = (0..workers).map(|_| Mutex::new((0, 0))).collect();
        let claimed = std::sync::atomic::AtomicUsize::new(0);
        let seen = Mutex::new(vec![0u32; total]);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let injector = &injector;
                let claims = &claims;
                let claimed = &claimed;
                let seen = &seen;
                scope.spawn(move || {
                    while let Some(i) = next_cell(me, injector, claims, claimed, total, None) {
                        seen.lock().unwrap()[i] += 1;
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        assert_eq!(claimed.load(std::sync::atomic::Ordering::Relaxed), total);
    }

    #[test]
    fn single_big_chunk_still_feeds_every_worker() {
        // Review finding: with one giant injector chunk, thieves used
        // to race the popping worker, see an empty world, and exit —
        // leaving the whole chunk single-threaded. The claimed-counter
        // termination keeps them alive until every cell is claimed, so
        // steals must now spread the chunk.
        let total = 64;
        let workers = 4;
        let injector: Mutex<VecDeque<(usize, usize)>> =
            Mutex::new(std::iter::once((0, total)).collect());
        let claims: Vec<Mutex<(usize, usize)>> = (0..workers).map(|_| Mutex::new((0, 0))).collect();
        let claimed = std::sync::atomic::AtomicUsize::new(0);
        let per_worker = Mutex::new(vec![0usize; workers]);
        let seen = Mutex::new(vec![0u32; total]);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let injector = &injector;
                let claims = &claims;
                let claimed = &claimed;
                let per_worker = &per_worker;
                let seen = &seen;
                scope.spawn(move || {
                    while let Some(i) = next_cell(me, injector, claims, claimed, total, None) {
                        per_worker.lock().unwrap()[me] += 1;
                        seen.lock().unwrap()[i] += 1;
                        // Simulate a cell long enough for thieves to act.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                });
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        let shares = per_worker.lock().unwrap();
        assert!(
            shares.iter().filter(|&&n| n > 0).count() >= 2,
            "steals must spread a single chunk across workers: {shares:?}"
        );
    }
}
