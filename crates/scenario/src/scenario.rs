//! The [`Scenario`] type — a named, validated event timeline — and the
//! deterministic generators that build the workload shapes a phone
//! actually sees: back-to-back sequences, periodic arrivals, bursts that
//! queue up, ambient staircases and mixed-deadline mixes.
//!
//! Generators are pure functions of their arguments (no clocks, no
//! RNG), so a scenario is fully reproducible from its constructor call —
//! the property the determinism tests pin down.

use crate::event::{AppRequest, ScenarioEvent, TimedEvent};
use teem_workload::App;

/// The paper's evaluation threshold, °C — the default for every arrival
/// unless a scenario event or per-app override says otherwise.
pub const DEFAULT_THRESHOLD_C: f64 = 85.0;

/// A named timeline of [`ScenarioEvent`]s with an initial ambient
/// temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    initial_ambient_c: f64,
    events: Vec<TimedEvent>,
}

impl Scenario {
    /// An empty scenario at the default 25 °C ambient.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            initial_ambient_c: 25.0,
            events: Vec::new(),
        }
    }

    /// Sets the ambient temperature the scenario starts at.
    ///
    /// # Panics
    ///
    /// Panics if `ambient_c` is outside −40 to 120 °C.
    pub fn with_initial_ambient(mut self, ambient_c: f64) -> Self {
        assert!(
            ambient_c.is_finite() && (-40.0..=120.0).contains(&ambient_c),
            "ambient {ambient_c} out of plausible range"
        );
        self.initial_ambient_c = ambient_c;
        self
    }

    /// Replaces the scenario's name — used by parameter sweeps to tag
    /// grid variants of a base scenario (`"bursty@thr82/amb30"`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Prepends a default-threshold change at `t = 0`, before every
    /// other event, so all arrivals — including ones at `t = 0` — plan
    /// against `threshold_c` unless they carry a per-app override. This
    /// is the threshold axis of a grid sweep.
    ///
    /// An existing leading `t = 0` threshold change is replaced, so
    /// repeated calls follow builder semantics: the last one wins.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_c` is not a finite plausible silicon
    /// threshold (40 to 120 °C).
    pub fn with_initial_threshold(mut self, threshold_c: f64) -> Self {
        assert!(
            threshold_c.is_finite() && (40.0..=120.0).contains(&threshold_c),
            "threshold {threshold_c} out of plausible range"
        );
        if let Some(first) = self.events.first_mut() {
            if first.at_s == 0.0 {
                if let ScenarioEvent::ThresholdChange { threshold_c: t } = &mut first.event {
                    *t = threshold_c;
                    return self;
                }
            }
        }
        self.events.insert(
            0,
            TimedEvent {
                at_s: 0.0,
                event: ScenarioEvent::ThresholdChange { threshold_c },
            },
        );
        self
    }

    /// Adds an event at `at_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is negative or not finite.
    pub fn at(mut self, at_s: f64, event: ScenarioEvent) -> Self {
        assert!(
            at_s.is_finite() && at_s >= 0.0,
            "event time {at_s} must be non-negative"
        );
        self.events.push(TimedEvent { at_s, event });
        self
    }

    /// Adds an app arrival at `at_s` with deadline factor `treq_factor`.
    pub fn arrive(self, at_s: f64, app: App, treq_factor: f64) -> Self {
        self.at(
            at_s,
            ScenarioEvent::Arrival(AppRequest::new(app, treq_factor)),
        )
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ambient temperature at scenario start, °C.
    pub fn initial_ambient_c(&self) -> f64 {
        self.initial_ambient_c
    }

    /// Events sorted by time (stable: same-time events keep insertion
    /// order, so simultaneous arrivals queue in the order they were
    /// declared).
    pub fn sorted_events(&self) -> Vec<TimedEvent> {
        let mut evs = self.events.clone();
        evs.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite times"));
        evs
    }

    /// Number of events on the timeline.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct applications this scenario launches, in first-seen
    /// order — what a runner must profile before executing it.
    pub fn apps(&self) -> Vec<App> {
        let mut apps = Vec::new();
        for ev in &self.events {
            if let ScenarioEvent::Arrival(req) = ev.event {
                if !apps.contains(&req.app) {
                    apps.push(req.app);
                }
            }
        }
        apps
    }

    /// Number of arrivals on the timeline.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Arrival(_)))
            .count()
    }

    // ------------------------------------------------------------------
    // Deterministic generators
    // ------------------------------------------------------------------

    /// Back-to-back sequence: every app arrives within the first few
    /// seconds (spaced `gap_s` apart) and the queue serialises them —
    /// the multi-app usage of the `multi_app` example, now expressible
    /// as data.
    ///
    /// # Panics
    ///
    /// Panics if `gap_s` is negative.
    pub fn back_to_back(
        name: impl Into<String>,
        apps: &[App],
        gap_s: f64,
        treq_factor: f64,
    ) -> Self {
        assert!(gap_s >= 0.0, "gap must be non-negative");
        let mut s = Scenario::new(name);
        for (i, &app) in apps.iter().enumerate() {
            s = s.arrive(i as f64 * gap_s, app, treq_factor);
        }
        s
    }

    /// Periodic arrivals of one app every `period_s` seconds — a
    /// recurring foreground task. With a period shorter than the app's
    /// execution time the queue grows and the board never cools; longer
    /// periods give idle gaps.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive.
    pub fn periodic(
        name: impl Into<String>,
        app: App,
        period_s: f64,
        count: usize,
        treq_factor: f64,
    ) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        let mut s = Scenario::new(name);
        for i in 0..count {
            s = s.arrive(i as f64 * period_s, app, treq_factor);
        }
        s
    }

    /// Bursty arrivals: `apps` split into bursts of `burst_size`, every
    /// app in a burst arriving within one second, bursts separated by
    /// `burst_gap_s` of silence — the "notification storm then quiet"
    /// pattern that maximises queueing pressure.
    ///
    /// # Panics
    ///
    /// Panics if `burst_size` is zero or `burst_gap_s` is negative.
    pub fn bursty(
        name: impl Into<String>,
        apps: &[App],
        burst_size: usize,
        burst_gap_s: f64,
        treq_factor: f64,
    ) -> Self {
        assert!(burst_size > 0, "burst size must be positive");
        assert!(burst_gap_s >= 0.0, "burst gap must be non-negative");
        let mut s = Scenario::new(name);
        for (i, &app) in apps.iter().enumerate() {
            let burst = (i / burst_size) as f64;
            let within = (i % burst_size) as f64;
            s = s.arrive(burst * burst_gap_s + within * 0.5, app, treq_factor);
        }
        s
    }

    /// Ambient staircase: periodic arrivals of `app` while the ambient
    /// temperature steps from `start_c` by `step_c` before each arrival
    /// after the first — the device warming up in the sun while its
    /// workload repeats.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive or the final ambient leaves
    /// the plausible range.
    pub fn staircase_ambient(
        name: impl Into<String>,
        app: App,
        count: usize,
        period_s: f64,
        start_c: f64,
        step_c: f64,
        treq_factor: f64,
    ) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        let final_c = start_c + step_c * count.saturating_sub(1) as f64;
        assert!(
            (-40.0..=120.0).contains(&final_c),
            "staircase ends at implausible ambient {final_c}"
        );
        let mut s = Scenario::new(name).with_initial_ambient(start_c);
        for i in 0..count {
            let t = i as f64 * period_s;
            if i > 0 {
                s = s.at(
                    t,
                    ScenarioEvent::AmbientChange {
                        ambient_c: start_c + step_c * i as f64,
                    },
                );
            }
            s = s.arrive(t, app, treq_factor);
        }
        s
    }

    /// Mixed deadlines: the apps arrive spaced `gap_s` apart,
    /// alternating between a tight and a loose deadline factor — tight
    /// deadlines force CPU+GPU partitioning (thermal management
    /// differentiates approaches), loose ones legitimately go GPU-only.
    ///
    /// # Panics
    ///
    /// Panics if `gap_s` is negative.
    pub fn mixed_deadline(
        name: impl Into<String>,
        apps: &[App],
        gap_s: f64,
        tight_factor: f64,
        loose_factor: f64,
    ) -> Self {
        assert!(gap_s >= 0.0, "gap must be non-negative");
        let mut s = Scenario::new(name);
        for (i, &app) in apps.iter().enumerate() {
            let factor = if i % 2 == 0 {
                tight_factor
            } else {
                loose_factor
            };
            s = s.arrive(i as f64 * gap_s, app, factor);
        }
        s
    }

    /// The built-in scenario suite: one scenario per generator, sized so
    /// a full TEEM-vs-baselines comparison stays in the minutes range —
    /// the workloads behind the `scenario_showdown` example and the
    /// scenario invariants tests.
    pub fn builtin_suite() -> Vec<Scenario> {
        vec![
            Scenario::back_to_back(
                "back-to-back",
                &[App::Conv2d, App::Covariance, App::Gemm, App::Mvt],
                2.0,
                0.90,
            ),
            Scenario::periodic("periodic-syrk", App::Syrk, 45.0, 3, 0.85),
            Scenario::bursty(
                "bursty",
                &[App::Covariance, App::Mvt, App::Syrk, App::Gesummv],
                2,
                120.0,
                0.90,
            ),
            Scenario::staircase_ambient(
                "ambient-staircase",
                App::Covariance,
                3,
                60.0,
                25.0,
                4.0,
                0.90,
            ),
            Scenario::mixed_deadline(
                "mixed-deadline",
                &[App::Syr2k, App::Conv2d, App::Correlation, App::Gemm],
                3.0,
                0.62,
                0.95,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_events_are_stable_at_equal_times() {
        let s = Scenario::new("x")
            .arrive(5.0, App::Covariance, 0.9)
            .arrive(0.0, App::Gemm, 0.9)
            .arrive(5.0, App::Mvt, 0.9);
        let evs = s.sorted_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at_s, 0.0);
        // Same-time events keep insertion order: CV before MV.
        let apps: Vec<App> = evs
            .iter()
            .filter_map(|e| match e.event {
                ScenarioEvent::Arrival(r) => Some(r.app),
                _ => None,
            })
            .collect();
        assert_eq!(apps, vec![App::Gemm, App::Covariance, App::Mvt]);
    }

    #[test]
    fn generators_are_deterministic() {
        let apps = [App::Covariance, App::Mvt, App::Syrk];
        let a = Scenario::bursty("b", &apps, 2, 60.0, 0.9);
        let b = Scenario::bursty("b", &apps, 2, 60.0, 0.9);
        assert_eq!(a, b);
        assert_eq!(a.arrivals(), 3);
    }

    #[test]
    fn staircase_embeds_ambient_changes() {
        let s = Scenario::staircase_ambient("st", App::Covariance, 3, 60.0, 25.0, 4.0, 0.9);
        assert_eq!(s.initial_ambient_c(), 25.0);
        let ambients: Vec<f64> = s
            .sorted_events()
            .iter()
            .filter_map(|e| match e.event {
                ScenarioEvent::AmbientChange { ambient_c } => Some(ambient_c),
                _ => None,
            })
            .collect();
        assert_eq!(ambients, vec![29.0, 33.0]);
        assert_eq!(s.arrivals(), 3);
    }

    #[test]
    fn mixed_deadline_alternates_factors() {
        let s = Scenario::mixed_deadline("m", &[App::Syrk, App::Gemm], 3.0, 0.6, 0.95);
        let factors: Vec<f64> = s
            .sorted_events()
            .iter()
            .filter_map(|e| match e.event {
                ScenarioEvent::Arrival(r) => Some(r.treq_factor),
                _ => None,
            })
            .collect();
        assert_eq!(factors, vec![0.6, 0.95]);
    }

    #[test]
    fn builtin_suite_has_five_distinctly_named_scenarios() {
        let suite = Scenario::builtin_suite();
        assert!(suite.len() >= 5);
        let mut names: Vec<&str> = suite.iter().map(Scenario::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "duplicate scenario names");
        for s in &suite {
            assert!(s.arrivals() >= 3, "{} too small", s.name());
        }
    }

    #[test]
    fn initial_threshold_precedes_simultaneous_arrivals() {
        let s = Scenario::new("g")
            .arrive(0.0, App::Covariance, 0.9)
            .with_initial_threshold(82.0);
        let evs = s.sorted_events();
        // The threshold event sorts (stably) ahead of the t = 0 arrival
        // even though it was attached afterwards.
        assert!(matches!(
            evs[0].event,
            ScenarioEvent::ThresholdChange { threshold_c } if threshold_c == 82.0
        ));
        assert!(matches!(evs[1].event, ScenarioEvent::Arrival(_)));
    }

    #[test]
    #[should_panic(expected = "plausible")]
    fn initial_threshold_rejects_absurd_values() {
        let _ = Scenario::new("g").with_initial_threshold(500.0);
    }

    #[test]
    fn repeated_initial_threshold_last_call_wins() {
        let s = Scenario::new("g")
            .arrive(0.0, App::Covariance, 0.9)
            .with_initial_threshold(82.0)
            .with_initial_threshold(90.0);
        let thresholds: Vec<f64> = s
            .sorted_events()
            .iter()
            .filter_map(|e| match e.event {
                ScenarioEvent::ThresholdChange { threshold_c } => Some(threshold_c),
                _ => None,
            })
            .collect();
        assert_eq!(thresholds, vec![90.0], "override replaces, not stacks");
    }

    #[test]
    fn with_name_renames_for_grid_variants() {
        let s = Scenario::periodic("base", App::Syrk, 45.0, 3, 0.85).with_name("base@thr82");
        assert_eq!(s.name(), "base@thr82");
        assert_eq!(s.arrivals(), 3);
    }

    #[test]
    fn apps_lists_distinct_apps_in_first_seen_order() {
        let s = Scenario::new("x")
            .arrive(0.0, App::Mvt, 0.9)
            .arrive(1.0, App::Covariance, 0.9)
            .arrive(2.0, App::Mvt, 0.9);
        assert_eq!(s.apps(), vec![App::Mvt, App::Covariance]);
    }
}
