//! Persisted sweep journal: crash-safe resume for streaming grids.
//!
//! PR 4's sweep engine streams thousand-cell grids in O(workers)
//! memory — but an interrupted grid used to restart from cell 0. A
//! [`SweepJournal`] spills every finished cell to an **append-only
//! JSONL file** as it streams past, so the grid's progress survives a
//! crash, a ^C or a pool cancellation, and
//! `SweepSpec::resume_from` turns the journal back
//! into a work list: load the completed cell indices, verify the spec
//! fingerprint, and [skip](crate::SweepSpec::skip_cells) the finished
//! cells in the work-stealing enumerator.
//!
//! # File format (journal v1)
//!
//! One JSON object per line; the first line is the header:
//!
//! ```text
//! {"kind":"header","version":1,"fingerprint":"<16 lowercase hex>","cells":500}
//! {"kind":"done","index":12,"scenario":"s@thr82","approach":"TEEM","apps":1,
//!  "makespan_s":1.5,...,"zone_trips":0,"deadline_misses":0,"digest":"<16 hex>"}
//! {"kind":"failed","index":13,"scenario":"poison","message":"panicked: ..."}
//! ```
//!
//! * the **fingerprint** is [`SweepSpec::fingerprint`] — the axes and
//!   resolved configuration hash — so a stale journal from a different
//!   grid is rejected at resume instead of silently mis-skipping;
//! * a sharded spec ([`SweepSpec::shard`](crate::SweepSpec::shard))
//!   additionally stamps its shard's canonical label into the header
//!   (`"shard":"mod:1/3"`); the fingerprint stays that of the *whole*
//!   grid, so shard journals of one campaign all agree with the
//!   single-process run they [merge](SweepJournal::merge) into;
//! * `done` lines carry the full [`CellRecord`]: every summary metric
//!   plus the trace digest, enough to rebuild an aggregate report
//!   offline ([`SweepAggregator::replay`](teem_telemetry::SweepAggregator::replay))
//!   or diff two runs cell-by-cell
//!   ([`teem_telemetry::sweep_diff`](teem_telemetry::sweep_diff));
//! * floats are written in Rust's shortest round-trip decimal form
//!   (non-finite values as `null`, read back as NaN);
//! * writes are **fsync-batched**: the OS file is flushed and synced
//!   every [`SweepJournal::with_fsync_every`] records (default 32), on
//!   the terminal `Finished` event, and on drop.
//!
//! # Crash tolerance on read
//!
//! A record is **durable only once its trailing newline lands**: a
//! process killed mid-write leaves at most one unterminated final
//! line, which [`LoadedJournal::load`] treats as torn — skipped with a
//! warning ([`LoadedJournal::torn_tail`]), the cell re-runs on resume
//! — even when the bytes written so far happen to parse.
//! [`SweepJournal::append_to`] truncates by the same
//! last-newline rule before appending, so the reader and the appender
//! can never disagree about whether the tail cell completed. Anything
//! else that fails to parse (corrupt JSON mid-file, an unknown kind, a
//! duplicate or out-of-range index, a terminated-but-garbled final
//! line — which no crash can produce) is a hard, line-numbered
//! [`JournalError::Corrupt`]: such damage means the file is not an
//! append-only journal any more, and resuming from it would silently
//! drop work.
//!
//! `failed` cells are recorded for post-mortems but **not** treated as
//! completed: a resume retries them.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read as _, Seek as _, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::sweep::{SweepEvent, SweepSpec};
use teem_telemetry::json::{self, write_f64 as json_f64, write_string as json_string};
use teem_telemetry::{CellRecord, Fnv};

/// The journal format version this module writes.
pub const JOURNAL_VERSION: u32 = 1;

/// Records between fsyncs unless overridden.
const DEFAULT_FSYNC_EVERY: usize = 32;

/// Everything that can go wrong writing, reading or resuming a
/// journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A line before the final one failed to parse, or the journal's
    /// internal invariants are violated (duplicate cell index, index
    /// outside the grid, a second header). `line` is 1-based.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The journal's header fingerprint does not match the spec being
    /// resumed — it was recorded for a different grid (different axes,
    /// scenarios or executor configuration).
    FingerprintMismatch {
        /// Fingerprint stamped in the journal header.
        journal: u64,
        /// Fingerprint of the spec attempting to resume.
        spec: u64,
    },
    /// The header's cell count disagrees with the spec's grid size
    /// (belt and braces on top of the fingerprint).
    GridMismatch {
        /// Grid size stamped in the journal header.
        journal: usize,
        /// Grid size of the spec attempting to resume.
        spec: usize,
    },
    /// The journal's shard label disagrees with the spec's shard
    /// restriction — e.g. appending a `mod:0/3` spec onto a `mod:1/3`
    /// journal, or resuming a shard journal with an unsharded spec.
    /// (`None` means unsharded.)
    ShardMismatch {
        /// Shard label stamped in the journal header, if any.
        journal: Option<String>,
        /// Shard label of the spec attempting to resume, if any.
        spec: Option<String>,
    },
    /// [`SweepJournal::merge`] was handed an empty journal set.
    MergeEmpty,
    /// A journal in a merge carries a different fingerprint than the
    /// first — the set mixes shards of different campaigns.
    MergeFingerprint {
        /// Zero-based position of the disagreeing journal in the slice.
        index: usize,
        /// Its fingerprint.
        journal: u64,
        /// The first journal's fingerprint.
        reference: u64,
    },
    /// A journal in a merge disagrees with the first on grid size.
    MergeGrid {
        /// Zero-based position of the disagreeing journal in the slice.
        index: usize,
        /// Its grid size.
        journal: usize,
        /// The first journal's grid size.
        reference: usize,
    },
    /// The same cell is recorded `done` by two journals of a merge —
    /// two workers ran it, so the shard set was not a partition and
    /// neither record can be trusted as *the* result.
    MergeOverlap {
        /// Zero-based position of the journal with the second record.
        index: usize,
        /// The doubly-recorded cell index.
        cell: usize,
    },
    /// The merged journals do not cover the whole grid — the campaign
    /// is not finished (or a shard's journal is missing from the set).
    MergeIncomplete {
        /// How many cells have no `done` record.
        missing: usize,
        /// The lowest uncovered cell index.
        first_missing: usize,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O failed: {e}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            JournalError::FingerprintMismatch { journal, spec } => write!(
                f,
                "journal fingerprint {journal:016x} does not match the sweep spec \
                 ({spec:016x}): it was recorded for a different grid"
            ),
            JournalError::GridMismatch { journal, spec } => write!(
                f,
                "journal was recorded for a {journal}-cell grid, the spec has {spec}"
            ),
            JournalError::ShardMismatch { journal, spec } => {
                let label = |s: &Option<String>| match s {
                    Some(l) => format!("shard {l}"),
                    None => "the whole grid".to_string(),
                };
                write!(
                    f,
                    "journal was recorded for {}, the spec runs {}",
                    label(journal),
                    label(spec)
                )
            }
            JournalError::MergeEmpty => write!(f, "merge of zero journals"),
            JournalError::MergeFingerprint {
                index,
                journal,
                reference,
            } => write!(
                f,
                "merge: journal #{index} has fingerprint {journal:016x}, the first has \
                 {reference:016x} — the set mixes different campaigns"
            ),
            JournalError::MergeGrid {
                index,
                journal,
                reference,
            } => write!(
                f,
                "merge: journal #{index} was recorded for a {journal}-cell grid, the first \
                 for {reference} cells"
            ),
            JournalError::MergeOverlap { index, cell } => write!(
                f,
                "merge: cell {cell} is recorded done twice (second record in journal \
                 #{index}) — the shards overlap, so neither record is authoritative"
            ),
            JournalError::MergeIncomplete {
                missing,
                first_missing,
            } => write!(
                f,
                "merge: {missing} cells have no done record (first missing: cell \
                 {first_missing}) — the campaign is incomplete or a shard journal is absent"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// A `failed` journal line: the cell errored or panicked in that run.
/// Failed cells are *not* completed — a resume retries them.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCell {
    /// Linear grid index.
    pub index: usize,
    /// Materialised cell name.
    pub scenario: String,
    /// Panic payload or error display.
    pub message: String,
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only JSONL sink for a sweep's event stream.
///
/// Create one per journal file with [`SweepJournal::create`] (fresh
/// run) or [`SweepJournal::append_to`] (resume), hand every
/// [`SweepEvent`] to [`SweepJournal::observe`] from the sweep sink, and
/// the grid's progress is durable:
///
/// ```no_run
/// use teem_scenario::{Scenario, SweepJournal, SweepSpec};
/// use teem_workload::App;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = SweepSpec::over([Scenario::new("s").arrive(0.0, App::Mvt, 0.9)])
///     .thresholds_c(&[80.0, 85.0]);
/// let mut journal = SweepJournal::create("sweep.jsonl", &spec)?;
/// spec.run_streaming(|ev| journal.observe(&ev).expect("journal write"))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SweepJournal {
    writer: BufWriter<File>,
    path: PathBuf,
    fsync_every: usize,
    pending: usize,
    written: usize,
    bytes: u64,
    fsyncs: u64,
    torn_repairs: u64,
}

/// I/O counters a [`SweepJournal`] accumulates over its lifetime — the
/// journal layer's contribution to a sweep's
/// [`MetricsSnapshot`](teem_telemetry::MetricsSnapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalIoStats {
    /// Records (`done` + `failed`) written through this handle.
    pub records: u64,
    /// Bytes written (record and header lines, newlines included).
    pub bytes: u64,
    /// fsync batches issued (`sync_data` calls — batch boundaries,
    /// explicit syncs, and the final drop sync).
    pub fsyncs: u64,
    /// Torn final lines truncated when opening for append.
    pub torn_tail_repairs: u64,
}

impl SweepJournal {
    /// Creates (truncating) the journal at `path` and stamps the header
    /// with `spec`'s fingerprint and grid size.
    ///
    /// # Errors
    ///
    /// Any file I/O failure.
    pub fn create(path: impl AsRef<Path>, spec: &SweepSpec) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut journal = SweepJournal {
            writer: BufWriter::new(file),
            path,
            fsync_every: DEFAULT_FSYNC_EVERY,
            pending: 0,
            written: 0,
            bytes: 0,
            fsyncs: 0,
            torn_repairs: 0,
        };
        let shard = spec.shard_spec().map(ToString::to_string);
        let line = header_line(
            JOURNAL_VERSION,
            spec.fingerprint(),
            spec.cells(),
            shard.as_deref(),
        );
        journal.write_line(&line)?;
        journal.sync()?; // the header is durable before any cell runs
        Ok(journal)
    }

    /// Opens an existing journal for appending — the resume path.
    /// Verifies the header against `spec` (fingerprint and grid size)
    /// and truncates a torn final line so subsequent appends start on a
    /// clean line boundary.
    ///
    /// # Errors
    ///
    /// [`JournalError::FingerprintMismatch`] / [`JournalError::GridMismatch`]
    /// for a journal recorded against a different grid,
    /// [`JournalError::Corrupt`] for an unreadable header, or I/O.
    pub fn append_to(path: impl AsRef<Path>, spec: &SweepSpec) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;

        // Verify the header before touching anything — only the first
        // line is read; a campaign journal can be arbitrarily large and
        // the caller's `LoadedJournal::load` already paid for a full
        // parse.
        let first_line = read_first_line(&mut file)?.ok_or_else(|| JournalError::Corrupt {
            line: 1,
            message: "no complete header line (torn or empty journal)".to_string(),
        })?;
        let header = parse_header_line(&first_line)
            .map_err(|message| JournalError::Corrupt { line: 1, message })?;
        header.verify(spec)?;

        // Truncate a torn tail: bytes after the last newline are a
        // partial record from the interrupted writer. Dropping them
        // keeps the append-only invariant "every line before the last
        // is complete" — the torn cell simply re-runs. The last newline
        // is found by scanning backward from the end, not by reading
        // the file.
        let keep = position_after_last_newline(&mut file)?;
        let torn_repairs = if keep < file.metadata()?.len() {
            file.set_len(keep)?;
            1
        } else {
            0
        };
        file.seek(io::SeekFrom::End(0))?;

        Ok(SweepJournal {
            writer: BufWriter::new(file),
            path,
            fsync_every: DEFAULT_FSYNC_EVERY,
            pending: 0,
            written: 0,
            bytes: 0,
            fsyncs: 0,
            torn_repairs,
        })
    }

    /// Sets how many records accumulate between fsyncs (1 ⇒ sync every
    /// record — maximum durability, maximum cost).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_fsync_every(mut self, every: usize) -> Self {
        assert!(every > 0, "fsync batch must be at least one record");
        self.fsync_every = every;
        self
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records (`done` + `failed`) written through this handle.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Lifetime I/O counters for this handle (records, bytes, fsync
    /// batches, torn-tail repairs).
    pub fn io_stats(&self) -> JournalIoStats {
        JournalIoStats {
            records: self.written as u64,
            bytes: self.bytes,
            fsyncs: self.fsyncs,
            torn_tail_repairs: self.torn_repairs,
        }
    }

    /// Feeds one sweep event to the journal: `CellDone` and
    /// `CellFailed` append a record, `Finished` forces a final fsync,
    /// `CellStarted` is ignored (only completion is durable progress).
    ///
    /// # Errors
    ///
    /// Any file I/O failure (the record may be partially written — a
    /// subsequent load treats it as the torn tail).
    pub fn observe(&mut self, event: &SweepEvent) -> io::Result<()> {
        match event {
            SweepEvent::CellDone { cell, result } => {
                let record =
                    CellRecord::from_summary(cell.index, &result.summary, result.trace.digest());
                self.record_done(&record)
            }
            SweepEvent::CellFailed {
                index,
                name,
                message,
            } => self.record_failed(*index, name, message),
            SweepEvent::Finished { .. } => self.sync(),
            SweepEvent::CellStarted { .. } => Ok(()),
        }
    }

    /// Appends one `done` record.
    ///
    /// # Errors
    ///
    /// Any file I/O failure.
    pub fn record_done(&mut self, record: &CellRecord) -> io::Result<()> {
        let line = done_line(record);
        self.write_record(&line)
    }

    /// Appends one `failed` record.
    ///
    /// # Errors
    ///
    /// Any file I/O failure.
    pub fn record_failed(&mut self, index: usize, scenario: &str, message: &str) -> io::Result<()> {
        let line = failed_line(index, scenario, message);
        self.write_record(&line)
    }

    /// Flushes buffered lines and fsyncs the file.
    ///
    /// # Errors
    ///
    /// Any file I/O failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.pending = 0;
        self.fsyncs += 1;
        Ok(())
    }

    fn write_record(&mut self, line: &str) -> io::Result<()> {
        self.write_line(line)?;
        self.written += 1;
        self.pending += 1;
        if self.pending >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal lines are single lines");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }
}

impl Drop for SweepJournal {
    fn drop(&mut self) {
        let _ = self.sync(); // best-effort durability on unwind
    }
}

/// Reads up to the file's first newline (exclusive), in small chunks —
/// never the whole file. `None` when no complete first line exists (an
/// empty file or a torn header), or when the "line" grows far past any
/// plausible header.
fn read_first_line(file: &mut File) -> io::Result<Option<Vec<u8>>> {
    file.seek(io::SeekFrom::Start(0))?;
    let mut line = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(None); // EOF before any newline
        }
        if let Some(pos) = buf[..n].iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            return Ok(Some(line));
        }
        line.extend_from_slice(&buf[..n]);
        if line.len() > 64 * 1024 {
            return Ok(None); // headers are ~100 bytes; this is no journal
        }
    }
}

/// Byte offset just past the file's last newline (0 when the file has
/// none), found by scanning backward from the end in chunks.
fn position_after_last_newline(file: &mut File) -> io::Result<u64> {
    let len = file.metadata()?.len();
    let mut end = len;
    let mut buf = [0u8; 8192];
    while end > 0 {
        let start = end.saturating_sub(buf.len() as u64);
        let n = (end - start) as usize;
        file.seek(io::SeekFrom::Start(start))?;
        file.read_exact(&mut buf[..n])?;
        if let Some(pos) = buf[..n].iter().rposition(|&b| b == b'\n') {
            return Ok(start + pos as u64 + 1);
        }
        end = start;
    }
    Ok(0)
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// A parsed journal: header metadata, the completed cells, the failed
/// cells and the torn-tail warning, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJournal {
    /// Format version from the header.
    pub version: u32,
    /// [`SweepSpec::fingerprint`] the journal was recorded against.
    pub fingerprint: u64,
    /// Grid size the journal was recorded against.
    pub cells: usize,
    /// Canonical shard label ([`ShardSpec`](crate::ShardSpec) display
    /// form) when the journal was written by a sharded spec; `None` for
    /// a whole-grid journal (including every merged journal).
    pub shard: Option<String>,
    /// Every `done` record, in file (= completion) order.
    pub records: Vec<CellRecord>,
    /// Every `failed` record — informational; resumes retry them.
    pub failed: Vec<FailedCell>,
    /// Set when the final line was torn (interrupted write) and
    /// skipped; the text says what was dropped.
    pub torn_tail: Option<String>,
}

impl LoadedJournal {
    /// Parses the journal at `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] (line-numbered) for mid-file damage,
    /// duplicate or out-of-range cell indices, a missing or unreadable
    /// header, or an unsupported version; [`JournalError::Io`] for file
    /// I/O. A torn **final** line is not an error — see
    /// [`LoadedJournal::torn_tail`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let content = std::fs::read(path.as_ref())?;
        Self::parse(&content)
    }

    /// Parses journal bytes (the testable core of
    /// [`LoadedJournal::load`]).
    ///
    /// # Errors
    ///
    /// As [`LoadedJournal::load`], minus file I/O.
    pub fn parse(content: &[u8]) -> Result<Self, JournalError> {
        // Split into lines; remember which is the last *non-empty* one
        // (a file ending in '\n' splits into a trailing "" segment).
        let lines: Vec<&[u8]> = content.split(|&b| b == b'\n').collect();
        let last_nonempty = lines.iter().rposition(|l| !l.is_empty());
        let terminated = content.last() == Some(&b'\n');

        let mut journal: Option<LoadedJournal> = None;
        let mut seen = BTreeSet::new();
        for (i, raw) in lines.iter().enumerate() {
            if raw.is_empty() {
                continue;
            }
            let line_no = i + 1;
            // A record is durable only once its newline lands: an
            // unterminated final line is torn *even if it happens to
            // parse* — this is the same rule `append_to` truncates by,
            // so reader and appender can never disagree about whether
            // the tail cell was done.
            let torn = Some(i) == last_nonempty && !terminated;
            let parsed = if torn {
                Err("no trailing newline (interrupted write)".to_string())
            } else {
                std::str::from_utf8(raw)
                    .map_err(|e| format!("not UTF-8: {e}"))
                    .and_then(parse_line)
            };
            let parsed = match parsed {
                Ok(p) => p,
                Err(message) => {
                    // A torn tail is skipped with a warning (the cell
                    // re-runs on resume). Anything else — including a
                    // newline-terminated final line that fails to
                    // parse, which no crash can produce — is fatal; so
                    // is a torn header, which leaves no usable journal.
                    if let Some(j) = journal.as_mut().filter(|_| torn) {
                        j.torn_tail = Some(format!(
                            "line {line_no} torn ({message}); cell not counted as done"
                        ));
                        break;
                    }
                    return Err(JournalError::Corrupt {
                        line: line_no,
                        message,
                    });
                }
            };
            match (parsed, &mut journal) {
                (Line::Header(h), None) => {
                    if h.version != JOURNAL_VERSION {
                        return Err(JournalError::Corrupt {
                            line: line_no,
                            message: format!(
                                "unsupported journal version {} (this build reads {})",
                                h.version, JOURNAL_VERSION
                            ),
                        });
                    }
                    journal = Some(LoadedJournal {
                        version: h.version,
                        fingerprint: h.fingerprint,
                        cells: h.cells,
                        shard: h.shard,
                        records: Vec::new(),
                        failed: Vec::new(),
                        torn_tail: None,
                    });
                }
                (Line::Header(_), Some(_)) => {
                    return Err(JournalError::Corrupt {
                        line: line_no,
                        message: "second header (journals are append-only, never restarted)"
                            .to_string(),
                    });
                }
                (_, None) => {
                    return Err(JournalError::Corrupt {
                        line: line_no,
                        message: "record before the header line".to_string(),
                    });
                }
                (Line::Done(record), Some(j)) => {
                    if record.index >= j.cells {
                        return Err(JournalError::Corrupt {
                            line: line_no,
                            message: format!(
                                "cell index {} outside the {}-cell grid",
                                record.index, j.cells
                            ),
                        });
                    }
                    if !seen.insert(record.index) {
                        return Err(JournalError::Corrupt {
                            line: line_no,
                            message: format!(
                                "cell {} recorded done twice — the journal was appended to \
                                 without resuming (or two writers raced)",
                                record.index
                            ),
                        });
                    }
                    j.records.push(record);
                }
                (Line::Failed(f), Some(j)) => {
                    if f.index >= j.cells {
                        return Err(JournalError::Corrupt {
                            line: line_no,
                            message: format!(
                                "cell index {} outside the {}-cell grid",
                                f.index, j.cells
                            ),
                        });
                    }
                    j.failed.push(f);
                }
            }
        }
        journal.ok_or(JournalError::Corrupt {
            line: 1,
            message: "empty journal: no header line".to_string(),
        })
    }

    /// The completed (done) cell indices — what a resume skips.
    pub fn completed(&self) -> BTreeSet<usize> {
        self.records.iter().map(|r| r.index).collect()
    }

    /// `true` when every grid cell has a `done` record.
    pub fn is_complete(&self) -> bool {
        self.records.len() == self.cells
    }

    /// Writes this journal back out as an ordinary v1 journal file —
    /// how a campaign's merged journal ([`SweepJournal::merge`])
    /// becomes a file any existing consumer (replay, diff,
    /// [`SweepSpec::resume_from`]) can load. Records are written in
    /// their in-memory order and the file is fsynced before returning.
    ///
    /// # Errors
    ///
    /// Any file I/O failure.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = File::create(path.as_ref())?;
        let mut writer = BufWriter::new(file);
        let header = header_line(
            self.version,
            self.fingerprint,
            self.cells,
            self.shard.as_deref(),
        );
        writer.write_all(header.as_bytes())?;
        writer.write_all(b"\n")?;
        for record in &self.records {
            writer.write_all(done_line(record).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        for f in &self.failed {
            writer.write_all(failed_line(f.index, &f.scenario, &f.message).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        writer.get_ref().sync_data()?;
        Ok(())
    }
}

impl SweepJournal {
    /// Merges shard journals of one campaign into a single whole-grid
    /// journal, verifying the set actually *is* one campaign:
    ///
    /// * every journal must carry the first one's fingerprint and grid
    ///   size ([`JournalError::MergeFingerprint`] /
    ///   [`JournalError::MergeGrid`]);
    /// * no cell may be `done` in two journals
    ///   ([`JournalError::MergeOverlap`] — the shards were not a
    ///   partition, so neither record is authoritative);
    /// * every grid cell must be `done` somewhere
    ///   ([`JournalError::MergeIncomplete`]).
    ///
    /// Shard labels are *not* required to tile the grid by themselves:
    /// after a straggler re-shard, a recovery worker's journal carries
    /// its base shard's label while owning only part of it. Coverage
    /// and disjointness of the actual records are the ground truth and
    /// exactly what is checked.
    ///
    /// The output's records are sorted by cell index, its shard label
    /// cleared (it covers the whole grid) and its
    /// [`journal_digest`] equal to any other complete record set of the
    /// same grid — the digest is an order-invariant sum, so
    /// merge order, completion order and shard shape all cancel out.
    /// `failed` records (retried cells that later succeeded elsewhere)
    /// are concatenated and kept for post-mortems.
    ///
    /// # Errors
    ///
    /// As itemised above, plus [`JournalError::MergeEmpty`] for an
    /// empty slice.
    pub fn merge(parts: &[LoadedJournal]) -> Result<LoadedJournal, JournalError> {
        let reference = parts.first().ok_or(JournalError::MergeEmpty)?;
        let mut seen = BTreeSet::new();
        let mut records: Vec<CellRecord> = Vec::new();
        let mut failed: Vec<FailedCell> = Vec::new();
        for (index, part) in parts.iter().enumerate() {
            if part.fingerprint != reference.fingerprint {
                return Err(JournalError::MergeFingerprint {
                    index,
                    journal: part.fingerprint,
                    reference: reference.fingerprint,
                });
            }
            if part.cells != reference.cells {
                return Err(JournalError::MergeGrid {
                    index,
                    journal: part.cells,
                    reference: reference.cells,
                });
            }
            for record in &part.records {
                if !seen.insert(record.index) {
                    return Err(JournalError::MergeOverlap {
                        index,
                        cell: record.index,
                    });
                }
                records.push(record.clone());
            }
            failed.extend(part.failed.iter().cloned());
        }
        if seen.len() != reference.cells {
            let first_missing = (0..reference.cells)
                .find(|i| !seen.contains(i))
                .unwrap_or(reference.cells);
            return Err(JournalError::MergeIncomplete {
                missing: reference.cells - seen.len(),
                first_missing,
            });
        }
        records.sort_unstable_by_key(|r| r.index);
        failed.sort_by_key(|f| f.index);
        Ok(LoadedJournal {
            version: reference.version,
            fingerprint: reference.fingerprint,
            cells: reference.cells,
            shard: None,
            records,
            failed,
            torn_tail: None,
        })
    }
}

impl SweepSpec {
    /// Resumes this grid from a persisted journal: verifies the
    /// journal's fingerprint (and grid size) against this spec and
    /// marks every journalled `done` cell as
    /// [skipped](SweepSpec::skip_cells), so the next
    /// [`run_streaming`](SweepSpec::run_streaming) executes only the
    /// remaining cells. Failed cells are retried; a complete journal
    /// resumes into an empty (immediately-finishing) run.
    ///
    /// # Errors
    ///
    /// [`JournalError::FingerprintMismatch`] or
    /// [`JournalError::GridMismatch`] when the journal belongs to a
    /// different grid — a stale journal must never silently skip cells
    /// of a new experiment — and [`JournalError::ShardMismatch`] when
    /// the journal's shard label and this spec's shard disagree (resume
    /// continues *the same* worker's slice; to subtract a *different*
    /// shard's progress use [`SweepSpec::exclude_completed`]).
    pub fn resume_from(self, journal: &LoadedJournal) -> Result<SweepSpec, JournalError> {
        Header {
            version: journal.version,
            fingerprint: journal.fingerprint,
            cells: journal.cells,
            shard: journal.shard.clone(),
        }
        .verify(&self)?;
        Ok(self.skip_cells(journal.completed()))
    }

    /// Subtracts `journal`'s completed cells from this spec's work
    /// list, verifying fingerprint and grid size but **not** the shard
    /// label — the cross-shard resume primitive behind straggler
    /// re-sharding: a replacement worker runs a *differently*-shaped
    /// slice of the same grid, yet must not re-run anything the dead
    /// worker's journal proves done (a cell done twice would fail the
    /// campaign's final [`SweepJournal::merge`] as an overlap).
    ///
    /// # Errors
    ///
    /// [`JournalError::FingerprintMismatch`] or
    /// [`JournalError::GridMismatch`] when the journal belongs to a
    /// different grid.
    pub fn exclude_completed(self, journal: &LoadedJournal) -> Result<SweepSpec, JournalError> {
        let fp = self.fingerprint();
        if journal.fingerprint != fp {
            return Err(JournalError::FingerprintMismatch {
                journal: journal.fingerprint,
                spec: fp,
            });
        }
        if journal.cells != self.cells() {
            return Err(JournalError::GridMismatch {
                journal: journal.cells,
                spec: self.cells(),
            });
        }
        Ok(self.skip_cells(journal.completed()))
    }
}

// ---------------------------------------------------------------------
// Line format
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Header {
    version: u32,
    fingerprint: u64,
    cells: usize,
    shard: Option<String>,
}

impl Header {
    fn verify(&self, spec: &SweepSpec) -> Result<(), JournalError> {
        if self.version != JOURNAL_VERSION {
            // Appending v1 records into a future-version journal would
            // produce a mixed-format file — refuse on write exactly as
            // `LoadedJournal::load` refuses on read.
            return Err(JournalError::Corrupt {
                line: 1,
                message: format!(
                    "unsupported journal version {} (this build reads {})",
                    self.version, JOURNAL_VERSION
                ),
            });
        }
        let fp = spec.fingerprint();
        if self.fingerprint != fp {
            return Err(JournalError::FingerprintMismatch {
                journal: self.fingerprint,
                spec: fp,
            });
        }
        if self.cells != spec.cells() {
            return Err(JournalError::GridMismatch {
                journal: self.cells,
                spec: spec.cells(),
            });
        }
        let spec_shard = spec.shard_spec().map(ToString::to_string);
        if self.shard != spec_shard {
            return Err(JournalError::ShardMismatch {
                journal: self.shard.clone(),
                spec: spec_shard,
            });
        }
        Ok(())
    }
}

#[derive(Debug)]
enum Line {
    Header(Header),
    Done(CellRecord),
    Failed(FailedCell),
}

/// The header as a JSONL line (no trailing newline). `shard` is the
/// canonical [`ShardSpec`](crate::ShardSpec) label; omitted entirely —
/// not `null` — for a whole-grid journal, so pre-shard journals and
/// unsharded ones stay byte-identical.
fn header_line(version: u32, fingerprint: u64, cells: usize, shard: Option<&str>) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"kind\":\"header\",\"version\":{version},\
         \"fingerprint\":\"{fingerprint:016x}\",\"cells\":{cells}"
    );
    if let Some(shard) = shard {
        line.push_str(",\"shard\":");
        json_string(&mut line, shard);
    }
    line.push('}');
    line
}

/// One `failed` record as a JSONL line (no trailing newline).
fn failed_line(index: usize, scenario: &str, message: &str) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"kind\":\"failed\",\"index\":{index},\"scenario\":"
    );
    json_string(&mut line, scenario);
    line.push_str(",\"message\":");
    json_string(&mut line, message);
    line.push('}');
    line
}

/// One `done` record as a JSONL line (no trailing newline).
fn done_line(r: &CellRecord) -> String {
    let mut line = String::with_capacity(256);
    let _ = write!(line, "{{\"kind\":\"done\",\"index\":{},", r.index);
    line.push_str("\"scenario\":");
    json_string(&mut line, &r.scenario);
    line.push_str(",\"approach\":");
    json_string(&mut line, &r.approach);
    let _ = write!(line, ",\"apps\":{}", r.apps_completed);
    for (key, v) in [
        ("makespan_s", r.makespan_s),
        ("busy_s", r.busy_s),
        ("overlap_s", r.overlap_s),
        ("idle_s", r.idle_s),
        ("energy_j", r.energy_j),
        ("idle_energy_j", r.idle_energy_j),
        ("peak_temp_c", r.peak_temp_c),
        ("avg_temp_c", r.avg_temp_c),
        ("temp_variance", r.temp_variance),
    ] {
        let _ = write!(line, ",\"{key}\":");
        json_f64(&mut line, v);
    }
    let _ = write!(
        line,
        ",\"zone_trips\":{},\"deadline_misses\":{},\"digest\":\"{:016x}\"}}",
        r.zone_trips, r.deadline_misses, r.trace_digest
    );
    line
}

fn parse_header_line(raw: &[u8]) -> Result<Header, String> {
    let text = std::str::from_utf8(raw).map_err(|e| format!("not UTF-8: {e}"))?;
    match parse_line(text)? {
        Line::Header(h) => Ok(h),
        _ => Err("first line is not a header".to_string()),
    }
}

fn parse_line(text: &str) -> Result<Line, String> {
    let fields = json::parse_object(text)?;
    let get = |key: &str| -> Result<&json::Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`"))
    };
    let get_str = |key: &str| -> Result<&str, String> {
        match get(key)? {
            json::Value::Str(s) => Ok(s.as_str()),
            other => Err(format!("field `{key}` must be a string, got {other:?}")),
        }
    };
    let get_count = |key: &str| -> Result<u64, String> {
        match get(key)? {
            json::Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Ok(*v as u64)
            }
            other => Err(format!(
                "field `{key}` must be a non-negative integer, got {other:?}"
            )),
        }
    };
    // Bounded casts: a count that overflows its target type is corrupt
    // data, never a value to wrap (4294967297 must not read as v1).
    let get_u32 = |key: &str| -> Result<u32, String> {
        u32::try_from(get_count(key)?).map_err(|_| format!("field `{key}` exceeds u32"))
    };
    let get_usize = |key: &str| -> Result<usize, String> {
        usize::try_from(get_count(key)?).map_err(|_| format!("field `{key}` exceeds usize"))
    };
    let get_f64 = |key: &str| -> Result<f64, String> {
        match get(key)? {
            json::Value::Num(v) => Ok(*v),
            json::Value::Null => Ok(f64::NAN), // non-finite serialises as null
            other => Err(format!("field `{key}` must be a number, got {other:?}")),
        }
    };
    let get_hex = |key: &str| -> Result<u64, String> {
        let s = get_str(key)?;
        u64::from_str_radix(s, 16).map_err(|e| format!("field `{key}` is not 64-bit hex: {e}"))
    };
    let get_opt_str = |key: &str| -> Result<Option<String>, String> {
        match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
            None => Ok(None),
            Some(json::Value::Str(s)) => Ok(Some(s.clone())),
            Some(other) => Err(format!("field `{key}` must be a string, got {other:?}")),
        }
    };

    match get_str("kind")? {
        "header" => Ok(Line::Header(Header {
            version: get_u32("version")?,
            fingerprint: get_hex("fingerprint")?,
            cells: get_usize("cells")?,
            shard: get_opt_str("shard")?,
        })),
        "done" => Ok(Line::Done(CellRecord {
            index: get_usize("index")?,
            scenario: get_str("scenario")?.to_string(),
            approach: get_str("approach")?.to_string(),
            apps_completed: get_u32("apps")?,
            makespan_s: get_f64("makespan_s")?,
            busy_s: get_f64("busy_s")?,
            overlap_s: get_f64("overlap_s")?,
            idle_s: get_f64("idle_s")?,
            energy_j: get_f64("energy_j")?,
            idle_energy_j: get_f64("idle_energy_j")?,
            peak_temp_c: get_f64("peak_temp_c")?,
            avg_temp_c: get_f64("avg_temp_c")?,
            temp_variance: get_f64("temp_variance")?,
            zone_trips: get_u32("zone_trips")?,
            deadline_misses: get_u32("deadline_misses")?,
            trace_digest: get_hex("digest")?,
        })),
        "failed" => Ok(Line::Failed(FailedCell {
            index: get_usize("index")?,
            scenario: get_str("scenario")?.to_string(),
            message: get_str("message")?.to_string(),
        })),
        other => Err(format!("unknown record kind `{other}`")),
    }
}

/// A content digest over a set of done records, order-invariant
/// (wrapping sum of per-record hashes — unlike an XOR fold, a repeated
/// record does not cancel itself out): two journals hold the same
/// cells iff their digests match, whatever completion order each run
/// produced. Used by the invariants tests to compare an
/// interrupted-then-resumed journal against an uninterrupted one.
pub fn journal_digest(records: &[CellRecord]) -> u64 {
    records
        .iter()
        .map(|r| {
            let mut h = Fnv::new();
            h.u64(r.index as u64);
            h.str(&r.scenario);
            h.str(&r.approach);
            h.u64(r.trace_digest);
            h.f64(r.energy_j);
            h.f64(r.makespan_s);
            h.u64(u64::from(r.zone_trips));
            h.u64(u64::from(r.deadline_misses));
            h.finish()
        })
        .fold(0u64, u64::wrapping_add)
}

// ---------------------------------------------------------------------
// Kill-after-K harness
// ---------------------------------------------------------------------

/// Serialises process-global panic-hook swaps across concurrent
/// [`run_interrupted`] callers (parallel tests).
static INTERRUPT_HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Demo/test harness: streams `spec` into `journal`, cancelling the
/// work-stealing pool after `k` completed cells by panicking in the
/// event sink — the same cancellation path a ^C or crash takes through
/// the engine. The injected panic is silenced by *payload*, so a
/// genuine worker-cell panic still reports through the process panic
/// hook, which is restored before returning; concurrent callers are
/// serialised so the hook swap never races.
///
/// This is the shared machinery behind the `sweep_resume` example, the
/// `repro resume` artefact and the `journal_invariants` suite.
///
/// # Panics
///
/// Panics if the grid finishes before `k` cells complete, or on
/// journal I/O failure.
pub fn run_interrupted(spec: &SweepSpec, journal: &mut SweepJournal, k: usize) {
    const PAYLOAD: &str = "teem sweep interrupt (injected)";
    let _serialised = INTERRUPT_HOOK_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let prev_hook = Arc::new(std::panic::take_hook());
    {
        let prev_hook = Arc::clone(&prev_hook);
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<&str>() != Some(&PAYLOAD) {
                prev_hook(info);
            }
        }));
    }
    let mut done = 0usize;
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        spec.run_streaming(|ev| {
            journal.observe(&ev).expect("journal write");
            if matches!(ev, SweepEvent::CellDone { .. }) {
                done += 1;
                if done == k {
                    // panic_any keeps the payload a &'static str the
                    // hook filter can match exactly.
                    std::panic::panic_any(PAYLOAD);
                }
            }
        })
        .expect("sweep runs");
    }));
    let _ = std::panic::take_hook(); // drop the filter's Arc clone…
    if let Ok(prev) = Arc::try_unwrap(prev_hook) {
        std::panic::set_hook(prev); // …and restore what was installed
    }
    assert!(
        crashed.is_err(),
        "grid finished ({done} cells) before the interrupt at {k}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize) -> CellRecord {
        CellRecord {
            index,
            scenario: format!("s{index}@thr82/amb30"),
            approach: "TEEM".to_string(),
            apps_completed: 2,
            makespan_s: 12.125,
            busy_s: 11.0,
            overlap_s: 0.5,
            idle_s: 0.625,
            energy_j: 1234.567891011,
            idle_energy_j: 1.5e-3,
            peak_temp_c: 84.9,
            avg_temp_c: 80.0333333333,
            temp_variance: 2.25,
            zone_trips: 1,
            deadline_misses: 0,
            trace_digest: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn done_line_round_trips_exactly() {
        let r = record(7);
        let line = done_line(&r);
        match parse_line(&line).expect("parses") {
            Line::Done(back) => assert_eq!(back, r),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn unterminated_final_line_is_torn_even_when_it_parses() {
        // A record is durable only once its newline lands: the reader
        // must not count a newline-less tail record as done, because
        // `append_to` truncates by the same last-newline rule — if the
        // two disagreed, a resume could permanently lose that cell.
        let header =
            "{\"kind\":\"header\",\"version\":1,\"fingerprint\":\"00000000000000aa\",\"cells\":9}";
        let done = done_line(&record(7));
        let terminated = format!("{header}\n{done}\n");
        let j = LoadedJournal::parse(terminated.as_bytes()).expect("parses");
        assert_eq!(j.records.len(), 1);
        assert!(j.torn_tail.is_none());

        let unterminated = format!("{header}\n{done}");
        let j = LoadedJournal::parse(unterminated.as_bytes()).expect("parses");
        assert_eq!(j.records.len(), 0, "newline-less record is torn");
        let warning = j.torn_tail.expect("warned");
        assert!(warning.contains("no trailing newline"), "{warning}");
    }

    #[test]
    fn terminated_garbled_final_line_is_a_hard_error() {
        // A crash can only truncate the tail — it cannot write garbage
        // *followed by* a newline. So a terminated unparseable final
        // line is real corruption, not a torn write.
        let content = "{\"kind\":\"header\",\"version\":1,\
                       \"fingerprint\":\"00000000000000aa\",\"cells\":9}\ngarbage\n";
        match LoadedJournal::parse(content.as_bytes()) {
            Err(JournalError::Corrupt { line: 2, .. }) => {}
            other => panic!("expected Corrupt at line 2, got {other:?}"),
        }
    }

    #[test]
    fn oversized_counters_are_rejected_not_wrapped() {
        // 2^32 + 1 must not truncate to version 1 / trips 1.
        let line = "{\"kind\":\"header\",\"version\":4294967297,\
                    \"fingerprint\":\"00000000000000aa\",\"cells\":9}";
        let err = parse_line(line).expect_err("overflowing version");
        assert!(err.contains("exceeds u32"), "{err}");
        let mut done = done_line(&record(0));
        done = done.replace("\"zone_trips\":1", "\"zone_trips\":4294967297");
        let err = parse_line(&done).expect_err("overflowing trips");
        assert!(err.contains("exceeds u32"), "{err}");
    }

    #[test]
    fn json_string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "control\u{0001}char",
            "unicode °C δ→∞",
        ] {
            let mut line = String::from("{\"kind\":\"failed\",\"index\":0,\"scenario\":");
            json_string(&mut line, s);
            line.push_str(",\"message\":\"m\"}");
            match parse_line(&line).expect("parses") {
                Line::Failed(f) => assert_eq!(f.scenario, s),
                _ => panic!("wrong kind"),
            }
        }
    }

    #[test]
    fn non_finite_metrics_become_null_and_read_back_nan() {
        let mut r = record(0);
        r.temp_variance = f64::NAN;
        r.overlap_s = f64::INFINITY;
        let line = done_line(&r);
        assert!(line.contains("\"temp_variance\":null"), "{line}");
        match parse_line(&line).expect("parses") {
            Line::Done(back) => {
                assert!(back.temp_variance.is_nan());
                assert!(back.overlap_s.is_nan(), "inf degrades to NaN by design");
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn parser_rejects_what_the_writer_never_emits() {
        for bad in [
            "",
            "{",
            "{}",                                    // missing kind
            "{\"kind\":\"done\"}",                   // missing fields
            "{\"kind\":\"mystery\",\"index\":0}",    // unknown kind
            "{\"kind\":\"done\",\"kind\":\"done\"}", // duplicate key
            "{\"kind\":\"header\"} trailing",        // trailing junk
            "[1,2,3]",                               // not an object
            "{\"kind\":\"failed\",\"index\":-1,\"scenario\":\"s\",\"message\":\"m\"}",
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn header_shard_label_round_trips_and_unsharded_headers_stay_identical() {
        let plain = header_line(1, 0xaa, 9, None);
        assert!(
            !plain.contains("shard"),
            "pre-shard byte format preserved: {plain}"
        );
        match parse_line(&plain).expect("parses") {
            Line::Header(h) => assert_eq!(h.shard, None),
            _ => panic!("wrong kind"),
        }
        let sharded = header_line(1, 0xaa, 9, Some("mod:1/3"));
        match parse_line(&sharded).expect("parses") {
            Line::Header(h) => assert_eq!(h.shard.as_deref(), Some("mod:1/3")),
            _ => panic!("wrong kind"),
        }
    }

    fn loaded(cells: usize, indices: &[usize]) -> LoadedJournal {
        LoadedJournal {
            version: 1,
            fingerprint: 0xaa,
            cells,
            shard: None,
            records: indices.iter().map(|&i| record(i)).collect(),
            failed: Vec::new(),
            torn_tail: None,
        }
    }

    #[test]
    fn merge_verifies_the_set_and_digests_order_invariantly() {
        let a = loaded(4, &[0, 2]);
        let b = loaded(4, &[3, 1]);
        let ab = SweepJournal::merge(&[a.clone(), b.clone()]).expect("merges");
        let ba = SweepJournal::merge(&[b.clone(), a.clone()]).expect("merges");
        assert_eq!(journal_digest(&ab.records), journal_digest(&ba.records));
        let indices: Vec<usize> = ab.records.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3], "merged records are index-sorted");
        assert!(ab.shard.is_none(), "a merged journal covers the whole grid");

        assert!(matches!(
            SweepJournal::merge(&[]),
            Err(JournalError::MergeEmpty)
        ));
        match SweepJournal::merge(&[a.clone(), loaded(4, &[0, 1])]) {
            Err(JournalError::MergeOverlap { index: 1, cell: 0 }) => {}
            other => panic!("expected overlap, got {other:?}"),
        }
        match SweepJournal::merge(std::slice::from_ref(&a)) {
            Err(JournalError::MergeIncomplete {
                missing: 2,
                first_missing: 1,
            }) => {}
            other => panic!("expected incomplete, got {other:?}"),
        }
        let mut alien = loaded(4, &[1, 3]);
        alien.fingerprint = 0xbb;
        match SweepJournal::merge(&[a.clone(), alien]) {
            Err(JournalError::MergeFingerprint { index: 1, .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        match SweepJournal::merge(&[a, loaded(5, &[1, 3, 4])]) {
            Err(JournalError::MergeGrid { index: 1, .. }) => {}
            other => panic!("expected grid mismatch, got {other:?}"),
        }
    }

    #[test]
    fn write_to_round_trips_through_load() {
        let mut j = loaded(4, &[2, 0, 1, 3]);
        j.failed.push(FailedCell {
            index: 1,
            scenario: "s1".to_string(),
            message: "first try panicked".to_string(),
        });
        let dir = std::env::temp_dir().join("teem-journal-write-to");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("merged.jsonl");
        j.write_to(&path).expect("writes");
        let back = LoadedJournal::load(&path).expect("loads");
        assert_eq!(back, j);
    }

    #[test]
    fn journal_digest_is_order_invariant_and_content_sensitive() {
        let a = [record(0), record(1), record(2)];
        let b = [record(2), record(0), record(1)];
        assert_eq!(journal_digest(&a), journal_digest(&b));
        let mut c = [record(0), record(1), record(2)];
        c[1].energy_j += 1.0;
        assert_ne!(journal_digest(&a), journal_digest(&c));
        assert_ne!(
            journal_digest(&a),
            journal_digest(&a[..2]),
            "subset differs"
        );
        // The sum fold must not let a repeated record cancel itself out
        // (an XOR fold would digest [A, A, B] equal to [B]).
        assert_ne!(
            journal_digest(&[record(0), record(0), record(1)]),
            journal_digest(&[record(1)]),
            "duplicates do not cancel"
        );
        assert_ne!(journal_digest(&[record(0), record(0)]), journal_digest(&[]));
    }
}
