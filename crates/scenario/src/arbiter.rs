//! The mapping arbiter: who runs concurrently, and on which resources.
//!
//! The paper's usage model serialises applications (one at a time, FIFO
//! — [`ContentionPolicy::Serial`]), but a real CPU-GPU MPSoC co-runs
//! workloads that contend for the shared clusters and the shared memory
//! system. The [`MappingArbiter`] generalises launch: given what the
//! active set already occupies, it decides whether the next queued app
//! launches now, on what core slice, and with what partition.
//!
//! Two co-running policies are provided:
//!
//! * [`ContentionPolicy::ClusterExclusive`] — device-exclusive
//!   co-scheduling: one app owns the CPU complex (its work re-planned
//!   CPU-only), another owns the GPU (re-planned GPU-only). No compute
//!   resource is shared, so the only coupling left is the
//!   shared-memory-bandwidth slowdown and the shared thermal budget —
//!   the configuration under which TEEM's proactive threshold must keep
//!   holding its zero-reactive-trip guarantee.
//! * [`ContentionPolicy::Shared`] — every app keeps its planned
//!   CPU+GPU partition; the arbiter splits the big and LITTLE clusters
//!   between apps (a later arrival is clamped to whatever cores remain)
//!   and the GPU is time-shared. Maximum queueing relief, maximum
//!   contention.
//!
//! Launch order stays strictly FIFO under every policy: a queued app
//! that cannot be placed blocks the apps behind it, which keeps
//! scenarios deterministic and the queueing-delay metric meaningful.

use teem_soc::CpuMapping;
use teem_workload::Partition;

/// How co-arriving applications share the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentionPolicy {
    /// One app at a time, FIFO — the paper's usage model and the
    /// default. Bit-identical to the pre-contention executor (pinned by
    /// the golden-digest tests).
    #[default]
    Serial,
    /// Two apps co-run with exclusive devices: one on the CPU complex,
    /// one on the GPU, both re-planned onto their device at launch.
    ClusterExclusive,
    /// Up to `max_apps` co-run with their planned partitions; CPU cores
    /// are split by the arbiter and the GPU is time-shared.
    Shared {
        /// Maximum concurrently-active applications (≥ 1).
        max_apps: usize,
    },
}

impl ContentionPolicy {
    /// The shared policy at its default width (two co-running apps).
    pub fn shared() -> ContentionPolicy {
        ContentionPolicy::Shared { max_apps: 2 }
    }

    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ContentionPolicy::Serial => "serial",
            ContentionPolicy::ClusterExclusive => "cluster-exclusive",
            ContentionPolicy::Shared { .. } => "shared",
        }
    }
}

/// What an active application currently occupies — the arbiter's view of
/// one member of the active set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceClaim {
    /// The cores the app was granted at launch.
    pub mapping: CpuMapping,
    /// The CPU fraction of the partition it launched with.
    pub cpu_fraction: f64,
}

/// The arbiter's decision for the next queued application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Launch now with the given resources, keeping the original plan's
    /// partition, initial frequencies and manager.
    Launch {
        /// The (possibly clamped) core grant.
        mapping: CpuMapping,
    },
    /// Re-plan the app onto these overrides (fresh initial frequencies
    /// and manager for the overridden plan), then launch.
    Replan {
        /// Core override for the re-plan.
        mapping: CpuMapping,
        /// Partition override for the re-plan.
        partition: Partition,
    },
    /// Stay queued until a slot (or a device) frees up.
    Defer,
}

/// Decides, per launch attempt, whether and how the next FIFO-queued app
/// joins the active set. Stateless: every decision is a pure function of
/// the policy, the active claims and the candidate's plan, which keeps
/// scenario execution deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MappingArbiter {
    policy: ContentionPolicy,
}

impl MappingArbiter {
    /// An arbiter enforcing `policy`.
    pub fn new(policy: ContentionPolicy) -> Self {
        MappingArbiter { policy }
    }

    /// The policy this arbiter enforces.
    pub fn policy(&self) -> ContentionPolicy {
        self.policy
    }

    /// Upper bound on concurrently-active applications under this
    /// policy.
    pub fn capacity(&self) -> usize {
        match self.policy {
            ContentionPolicy::Serial => 1,
            ContentionPolicy::ClusterExclusive => 2,
            ContentionPolicy::Shared { max_apps } => max_apps.max(1),
        }
    }

    /// Decides how a candidate with planned `mapping`/`partition` joins
    /// an active set currently holding `active` claims, on a board whose
    /// clusters offer `cluster_cores` (LITTLE, big — the executor passes
    /// the board's per-domain core counts, so the arbiter never oversells
    /// a board that isn't the stock 4+4 Exynos).
    pub fn admit(
        &self,
        active: &[ResourceClaim],
        mapping: CpuMapping,
        partition: Partition,
        cluster_cores: CpuMapping,
    ) -> Admission {
        if active.len() >= self.capacity() {
            return Admission::Defer;
        }
        match self.policy {
            ContentionPolicy::Serial => Admission::Launch { mapping },
            ContentionPolicy::ClusterExclusive => {
                self.admit_cluster_exclusive(active, mapping, partition, cluster_cores)
            }
            ContentionPolicy::Shared { .. } => {
                self.admit_shared(active, mapping, partition, cluster_cores)
            }
        }
    }

    /// Device-exclusive co-scheduling: the first app takes the side its
    /// plan leans toward, the second takes whichever device is free.
    fn admit_cluster_exclusive(
        &self,
        active: &[ResourceClaim],
        mapping: CpuMapping,
        partition: Partition,
        cluster_cores: CpuMapping,
    ) -> Admission {
        let cpu_taken = active.iter().any(|c| c.cpu_fraction > 0.0);
        let gpu_taken = active.iter().any(|c| c.cpu_fraction < 1.0);
        let cpu_side = match (cpu_taken, gpu_taken) {
            (true, true) => return Admission::Defer,
            (true, false) => false,
            (false, true) => true,
            // Alone: take the device the plan leans toward.
            (false, false) => partition.cpu_fraction() >= 0.5,
        };
        if cpu_side {
            // A plan that was GPU-only carries no cores; grant the
            // paper's default CPU complex (clamped to what this board
            // actually has) instead.
            let m = if mapping.is_empty() {
                CpuMapping::new(2.min(cluster_cores.little), 3.min(cluster_cores.big))
            } else {
                mapping
            };
            Admission::Replan {
                mapping: m,
                partition: Partition::all_cpu(),
            }
        } else {
            Admission::Replan {
                mapping: CpuMapping::new(0, 0),
                partition: Partition::all_gpu(),
            }
        }
    }

    /// Shared clusters: clamp the candidate's core request to whatever
    /// the active set left over; defer if its CPU share would get no
    /// core at all.
    fn admit_shared(
        &self,
        active: &[ResourceClaim],
        mapping: CpuMapping,
        partition: Partition,
        cluster_cores: CpuMapping,
    ) -> Admission {
        let used_big: u32 = active.iter().map(|c| c.mapping.big).sum();
        let used_little: u32 = active.iter().map(|c| c.mapping.little).sum();
        let granted = CpuMapping::new(
            mapping
                .little
                .min(cluster_cores.little.saturating_sub(used_little)),
            mapping.big.min(cluster_cores.big.saturating_sub(used_big)),
        );
        // A plan with a CPU share needs at least one core to make
        // progress; head-of-line blocks until a co-runner completes.
        if granted.is_empty() && partition.cpu_fraction() > 0.0 {
            return Admission::Defer;
        }
        Admission::Launch { mapping: granted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(mapping: CpuMapping, cpu_fraction: f64) -> ResourceClaim {
        ResourceClaim {
            mapping,
            cpu_fraction,
        }
    }

    /// The stock Exynos 5422 cluster sizes.
    fn xu4() -> CpuMapping {
        CpuMapping::new(4, 4)
    }

    #[test]
    fn serial_admits_one_at_a_time_unchanged() {
        let a = MappingArbiter::new(ContentionPolicy::Serial);
        assert_eq!(a.capacity(), 1);
        let m = CpuMapping::new(2, 3);
        assert_eq!(
            a.admit(&[], m, Partition::even(), xu4()),
            Admission::Launch { mapping: m }
        );
        assert_eq!(
            a.admit(&[claim(m, 0.5)], m, Partition::even(), xu4()),
            Admission::Defer
        );
    }

    #[test]
    fn cluster_exclusive_splits_devices() {
        let a = MappingArbiter::new(ContentionPolicy::ClusterExclusive);
        assert_eq!(a.capacity(), 2);
        // First app leans CPU: takes the CPU complex.
        let first = a.admit(
            &[],
            CpuMapping::new(2, 3),
            Partition::from_cpu_fraction(0.6),
            xu4(),
        );
        assert_eq!(
            first,
            Admission::Replan {
                mapping: CpuMapping::new(2, 3),
                partition: Partition::all_cpu()
            }
        );
        // Second app must take the GPU, whatever its plan preferred.
        let second = a.admit(
            &[claim(CpuMapping::new(2, 3), 1.0)],
            CpuMapping::new(2, 3),
            Partition::from_cpu_fraction(0.9),
            xu4(),
        );
        assert_eq!(
            second,
            Admission::Replan {
                mapping: CpuMapping::new(0, 0),
                partition: Partition::all_gpu()
            }
        );
        // Both devices taken: defer.
        let third = a.admit(
            &[
                claim(CpuMapping::new(2, 3), 1.0),
                claim(CpuMapping::new(0, 0), 0.0),
            ],
            CpuMapping::new(2, 3),
            Partition::even(),
            xu4(),
        );
        assert_eq!(third, Admission::Defer);
    }

    #[test]
    fn cluster_exclusive_gpu_leaning_first_app_takes_gpu() {
        let a = MappingArbiter::new(ContentionPolicy::ClusterExclusive);
        let first = a.admit(&[], CpuMapping::new(0, 0), Partition::all_gpu(), xu4());
        assert_eq!(
            first,
            Admission::Replan {
                mapping: CpuMapping::new(0, 0),
                partition: Partition::all_gpu()
            }
        );
        // The next one is forced onto the CPU; an empty planned mapping
        // falls back to the paper's 2L+3B.
        let second = a.admit(
            &[claim(CpuMapping::new(0, 0), 0.0)],
            CpuMapping::new(0, 0),
            Partition::all_gpu(),
            xu4(),
        );
        assert_eq!(
            second,
            Admission::Replan {
                mapping: CpuMapping::new(2, 3),
                partition: Partition::all_cpu()
            }
        );
    }

    #[test]
    fn shared_clamps_to_leftover_cores() {
        let a = MappingArbiter::new(ContentionPolicy::shared());
        assert_eq!(a.capacity(), 2);
        // Active app holds 2L+3B; a 2L+3B candidate gets the remainder.
        let got = a.admit(
            &[claim(CpuMapping::new(2, 3), 0.5)],
            CpuMapping::new(2, 3),
            Partition::even(),
            xu4(),
        );
        assert_eq!(
            got,
            Admission::Launch {
                mapping: CpuMapping::new(2, 1)
            }
        );
        // No big cores left and the candidate needs CPU: defer.
        let blocked = a.admit(
            &[claim(CpuMapping::new(4, 4), 0.5)],
            CpuMapping::new(2, 3),
            Partition::even(),
            xu4(),
        );
        assert_eq!(blocked, Admission::Defer);
        // A GPU-only candidate sails through regardless.
        let gpu_only = a.admit(
            &[claim(CpuMapping::new(4, 4), 0.5)],
            CpuMapping::new(0, 0),
            Partition::all_gpu(),
            xu4(),
        );
        assert_eq!(
            gpu_only,
            Admission::Launch {
                mapping: CpuMapping::new(0, 0)
            }
        );
    }

    #[test]
    fn shared_capacity_is_configurable_with_a_floor_of_one() {
        assert_eq!(
            MappingArbiter::new(ContentionPolicy::Shared { max_apps: 4 }).capacity(),
            4
        );
        assert_eq!(
            MappingArbiter::new(ContentionPolicy::Shared { max_apps: 0 }).capacity(),
            1
        );
    }

    #[test]
    fn cluster_cores_come_from_the_board_not_a_constant() {
        // `CpuMapping` itself caps at the 4+4 type maximum, so the case
        // that matters is a board with *fewer* cores than that maximum:
        // the arbiter must never oversell it.
        let a = MappingArbiter::new(ContentionPolicy::shared());
        // A 2-big-core board: the first app's leftover is zero big cores
        // and one LITTLE, never an oversold grant.
        let tight = a.admit(
            &[claim(CpuMapping::new(1, 2), 0.5)],
            CpuMapping::new(2, 3),
            Partition::even(),
            CpuMapping::new(2, 2),
        );
        assert_eq!(
            tight,
            Admission::Launch {
                mapping: CpuMapping::new(1, 0)
            }
        );
        // Device-exclusive on a tiny board: the empty-mapping CPU-side
        // fallback clamps the paper's 2L+3B to what exists.
        let ce = MappingArbiter::new(ContentionPolicy::ClusterExclusive);
        let second = ce.admit(
            &[claim(CpuMapping::new(0, 0), 0.0)],
            CpuMapping::new(0, 0),
            Partition::all_gpu(),
            CpuMapping::new(1, 2),
        );
        assert_eq!(
            second,
            Admission::Replan {
                mapping: CpuMapping::new(1, 2),
                partition: Partition::all_cpu()
            }
        );
    }

    #[test]
    fn policy_names_for_reports() {
        assert_eq!(ContentionPolicy::Serial.name(), "serial");
        assert_eq!(
            ContentionPolicy::ClusterExclusive.name(),
            "cluster-exclusive"
        );
        assert_eq!(ContentionPolicy::shared().name(), "shared");
        assert_eq!(ContentionPolicy::default(), ContentionPolicy::Serial);
    }
}
