//! # teem-scenario
//!
//! Event-driven multi-application workload scenarios for the TEEM
//! reproduction.
//!
//! The paper evaluates one application at a time, but its motivation is
//! a phone running *concurrent, dynamically arriving* workloads while
//! its environment changes. This crate makes that setting expressible
//! and measurable:
//!
//! * a [`Scenario`] is a named timeline of [`ScenarioEvent`]s — app
//!   arrivals with per-app [requirements](AppRequest), ambient
//!   temperature changes, threshold changes and management-approach
//!   swaps — built by hand or by the deterministic generators
//!   (back-to-back, periodic, bursty, ambient staircase,
//!   mixed-deadline);
//! * a [`ScenarioRunner`] executes a scenario under any
//!   [`Approach`](teem_core::runner::Approach): arrivals queue FIFO,
//!   the board idles and cools between runs, and the thermal state
//!   carries across the whole timeline — physics shared function-level
//!   with the single-run engine;
//! * a [`MappingArbiter`] decides how co-arriving apps share the board
//!   ([`ContentionPolicy`]): serialised as the paper measures,
//!   device-exclusive co-scheduling (one app on the CPU complex, one on
//!   the GPU), or fully shared clusters with the big cluster split
//!   between apps — co-runners slowed by the shared-memory-bandwidth
//!   model in [`teem_workload::contention`];
//! * [`Scenario::from_csv`] loads recorded arrival timelines
//!   (`t, app, treq_factor` lines) so real usage traces can drive the
//!   evaluation instead of synthetic generators;
//! * a [`SweepSpec`] names cartesian axes — scenarios × approaches ×
//!   [`ContentionPolicy`] × initial threshold × ambient ×
//!   [`TeemTunables`](teem_core::TeemTunables) knob sets ×
//!   [`IdlePolicy`](teem_soc::IdlePolicy) — and a work-stealing
//!   executor streams every finished cell as a [`SweepEvent`], so
//!   thousands-of-cell grids aggregate online in O(workers) memory
//!   (pair it with
//!   [`SweepAggregator`](teem_telemetry::SweepAggregator));
//! * a [`SweepJournal`] spills the event stream to an append-only
//!   JSONL journal (fsync-batched, torn-tail tolerant) so an
//!   interrupted grid **resumes** from its last completed cell
//!   ([`SweepSpec::resume_from`] — fingerprint-checked, skipping
//!   journalled cells in the enumerator) and finished sweeps can be
//!   diffed across commits
//!   ([`sweep_diff`](teem_telemetry::sweep_diff)) or replayed into
//!   reports offline
//!   ([`SweepAggregator::replay`](teem_telemetry::SweepAggregator::replay));
//! * a **distributed campaign** splits one grid across worker
//!   *processes*: a [`ShardSpec`] ([`SweepSpec::shard`]) lowers onto
//!   the skip set and stamps the shard into the journal header,
//!   [`SweepJournal::merge`] verifies the shard journals (same
//!   fingerprint, no overlap, full coverage) and folds them into one
//!   digest-identical whole, and [`run_campaign`] supervises the fleet
//!   — killing stragglers and re-sharding their remaining cells onto
//!   survivors (the `teem-coordinator` binary is its CLI face);
//! * a [`BatchRunner`] — now a thin collect-and-reorder wrapper over
//!   the sweep engine — fans a scenario × approach matrix out and
//!   aggregates [`ScenarioSummary`](teem_telemetry::ScenarioSummary)s
//!   into a comparison table in deterministic scenario-major order.
//!
//! Everything is deterministic: the same scenario under the same
//! approach produces an identical trace, run to run and thread to
//! thread.
//!
//! # Examples
//!
//! Two apps arrive half a minute apart while the ambient steps up 6 °C;
//! compare TEEM against the stock ondemand stack:
//!
//! ```
//! use teem_scenario::{BatchRunner, Scenario, ScenarioEvent};
//! use teem_core::runner::Approach;
//! use teem_workload::App;
//!
//! let scenario = Scenario::new("warm-afternoon")
//!     .arrive(0.0, App::Mvt, 0.9)
//!     .at(30.0, ScenarioEvent::AmbientChange { ambient_c: 31.0 })
//!     .arrive(30.0, App::Gesummv, 0.9);
//!
//! let results = BatchRunner::new()
//!     .run_matrix(&[scenario], &[Approach::Teem, Approach::Ondemand])
//!     .expect("profiling succeeds");
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].summary.approach, "TEEM");
//! assert_eq!(results[0].summary.zone_trips, 0); // proactive, trip-free
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arbiter;
mod batch;
mod csv;
mod event;
mod exec;
mod journal;
mod lockstep;
mod obs;
mod scenario;
mod shard;
mod sweep;

pub use arbiter::{Admission, ContentionPolicy, MappingArbiter, ResourceClaim};
pub use batch::BatchRunner;
pub use csv::TraceParseError;
pub use event::{AppRequest, ScenarioEvent, TimedEvent};
pub use exec::{ScenarioResult, ScenarioRunner};
pub use journal::{
    journal_digest, run_interrupted, FailedCell, JournalError, JournalIoStats, LoadedJournal,
    SweepJournal, JOURNAL_VERSION,
};
pub use obs::{CampaignProgress, PoolObs, ProgressReporter, SweepObsReport, WorkerObs};
pub use scenario::{Scenario, DEFAULT_THRESHOLD_C};
pub use shard::{
    metrics_sidecar, run_campaign, CampaignError, CampaignOpts, CampaignOutcome, ShardSpec,
    WorkerAssignment,
};
pub use sweep::{ConfigPatch, SweepCell, SweepError, SweepEvent, SweepRunStats, SweepSpec};
