//! The batched lockstep execution path: K sweep cells stepped in SIMD
//! lockstep through one shared [`ThermalBatch`].
//!
//! A sweep grid multiplies a handful of scenarios by knob axes, so at
//! any instant a worker holds many cells running the *same physics* at
//! different operating points. The scalar loop steps them one at a
//! time, re-deriving per-step constants (power coefficients, progress
//! rates, frequency arbitration) every 10 ms tick even though they only
//! change at control decisions. This module exploits both redundancies:
//!
//! * **SoA thermal lockstep** — each admitted cell owns one lane of a
//!   [`ThermalBatch`]; one [`batched_thermal_step`] integrates all K RC
//!   networks through the autovectorized `F64xN` kernel.
//! * **Frozen operating points** — between control ticks a solo cell's
//!   effective frequencies, power coefficients and progress rates are
//!   provably constant, so the fast path caches them
//!   ([`NodePowerModel`], per-step progress increments) and re-derives
//!   only at a control tick or a busy-flag flip.
//!
//! # Exactness, not approximation
//!
//! The pool produces **bit-identical** results to the scalar loop; the
//! parity suite pins it. Three mechanisms make that provable:
//!
//! 1. Cells are admitted only while [`eligible_for_lockstep`]: a single
//!    active app, queue drained, timeline exhausted, thermal zone idle
//!    and below trip. In that regime every scalar phase the fast path
//!    skips (event dispatch, launches, gap fast-forward, per-step zone
//!    polling below trip) is a no-op by its own guard.
//! 2. The phases the fast path *does* run go through the same
//!    [`CellSim`] methods as the scalar loop (`phase_sample`,
//!    `phase_control`, `phase_actuate`, `phase_completions`), and the
//!    cached power/progress values are built from the identical
//!    expressions the scalar loop evaluates (pinned bitwise by the
//!    `teem-soc` batch tests).
//! 3. **Divergence is a handoff, not a special case.** The moment a
//!    lane leaves the fast regime — a sensor sample at or above the
//!    zone's trip point, or the executor timeout — its thermal state is
//!    stored back to its own board and the cell returns to the scalar
//!    [`ScenarioRunner::step_cell`] loop at a phase boundary the scalar
//!    loop itself would have reached. Sibling lanes are untouched.

use teem_soc::perf::{cpu_rate, gpu_rate};
use teem_soc::{
    batched_thermal_step, big_core_hotspot_powers, read_lanes_with_hotspots, BatchPowerModel,
    BatchScratch, ClusterFreqs, CpuMapping, HotspotSplit, NodePowerModel, SensorBank, SensorSweep,
    StepObs, ThermalBatch, ThermalModel,
};
use teem_workload::bandwidth_slowdown;

use crate::exec::{combined_mapping, CellSim, ScenarioRunner};

/// `true` when `sim` is in the regime the lockstep fast path models
/// exactly: one active app, nothing queued, no timeline events left,
/// the reactive thermal zone idle with the latest sensor reading below
/// its trip point, and the executor timeout not yet reached.
///
/// Under these invariants the scalar phases the fast path skips are
/// all provably no-ops: the event loop's cursor is exhausted, the
/// launch loop breaks on the empty queue, the gap fast-forward needs an
/// empty active set, and the zone's `update` below trip returns `None`
/// without mutating state.
pub(crate) fn eligible_for_lockstep(sim: &CellSim) -> bool {
    sim.active.len() == 1
        && sim.queue.is_empty()
        && sim.next_ev >= sim.events.len()
        && !sim.zone.is_capping()
        && sim.readings.max_c() < sim.zone.trip_c
        && !sim.timed_out
        && sim.t < sim.timeout_s
}

/// The per-lane cache of everything that is constant between control
/// decisions: the frozen power model, the per-step progress increments,
/// the operating point they were derived at, and the sample inputs that
/// are fixed for the solo app's whole residency.
struct LaneCache {
    model: NodePowerModel,
    /// `cpu_rate(..) * dt / s` at the cached operating point — the
    /// exact expression the scalar progress phase evaluates per step.
    inc_cpu: f64,
    /// `gpu_rate(..) * dt / (s * gpu_sharers)` likewise (`gpu_sharers`
    /// is always 1.0 for a solo app).
    inc_gpu: f64,
    /// The effective frequencies the caches were derived at.
    effective: ClusterFreqs,
    /// Busy flags the power model was built with (the scalar loop's
    /// `!cpu_done()` / `!gpu_done()` share flags).
    cpu_busy: bool,
    gpu_busy: bool,
    /// `combined_mapping(active, cluster_cores)` for the solo app — the
    /// scalar sensing phase's mapping argument, constant while the job
    /// runs because a job's mapping never changes mid-flight.
    sample_mapping: CpuMapping,
    /// The scalar sensing phase's activity fold specialised to one app:
    /// `max(f64::MIN, activity)` is `activity` bit-for-bit.
    sample_activity: f64,
    /// [`big_core_hotspot_powers`] with everything but the node
    /// temperature pre-folded — rebuilt alongside the power model, so a
    /// due sample costs one `exp` instead of a voltage lookup plus the
    /// full dynamic/leakage chain. Bit-identical by the
    /// [`HotspotSplit`] contract.
    hotspot: HotspotSplit,
}

/// Per-lane counter snapshots taken at (re)admission, from which the
/// step/sub-step counters are *derived* at every flush instead of being
/// incremented per lane per round: while resident, a lane gains exactly
/// one step, one batched step, and one fixed sub-step block per round,
/// so `counter = base + (step_idx − step_idx₀)` reproduces the scalar
/// loop's per-step `+= 1` bookkeeping with zero work in the inner loop.
#[derive(Clone, Copy, Default)]
struct LaneBases {
    step_idx0: u64,
    steps0: u64,
    batched0: u64,
    substeps0: u64,
}

/// The per-step-mutable slice of every lane's state, mirrored out of
/// the sprawling [`CellSim`]s into struct-of-arrays planes the lockstep
/// inner loop keeps cache-resident: a round's pre/post passes are
/// branch-free sweeps over these vectors (plus the SoA batch planes)
/// and never touch the K scattered multi-kilobyte simulations.
///
/// # Sync protocol
///
/// The planes **own** their slots while a lane is resident: the fast
/// path mutates only the hot copy. Before any call back into `CellSim`
/// code (a sensor sample, a control/actuate pass, completion handling,
/// retirement), [`HotPlanes::flush`] writes the owned fields back;
/// after the call, the mirrors the sim may have moved are re-read — all
/// of them via [`HotPlanes::reload`] at admission, or just
/// `next_control` and the cached rates after a control/actuate pass
/// (the only fields those phases can touch). Every mirrored expression
/// the fast path evaluates — progress increments, `done()` comparisons,
/// energy accounting, the `t = step_idx · dt` clock — is the identical
/// IEEE expression on identical values, so residency moves without
/// touching a single bit.
#[derive(Default)]
struct HotPlanes {
    // Owned while resident (flushed back to the sim at boundaries).
    t: Vec<f64>,
    /// The step index as an (exact) float — advanced by `+= 1.0` in the
    /// post-thermal vector pass so the `t = step_idx · dt` clock needs
    /// no int→float conversion. Bit-equal to the scalar counter's
    /// conversion while `step_idx < 2⁵³` (campaign cells run thousands
    /// of steps, nowhere near it).
    step_f: Vec<f64>,
    energy_j: Vec<f64>,
    busy_s: Vec<f64>,
    last_total_w: Vec<f64>,
    cpu_done: Vec<f64>,
    gpu_done: Vec<f64>,
    job_energy_j: Vec<f64>,
    // Read-only mirrors (refreshed from the sim/cache after sync points).
    next_sample: Vec<f64>,
    next_control: Vec<f64>,
    timeout_s: Vec<f64>,
    cpu_items: Vec<f64>,
    gpu_items: Vec<f64>,
    inc_cpu: Vec<f64>,
    inc_gpu: Vec<f64>,
    cpu_has_mapping: Vec<bool>,
    // Fast-path-only state (no sim twin).
    cpu_busy: Vec<bool>,
    gpu_busy: Vec<bool>,
    /// Set when a busy flag flipped during the previous step's progress
    /// phase (or at admission): the next step must run the
    /// control/actuate phases because `arbitrate_freqs` may now pick
    /// different frequencies — exactly when the scalar loop's
    /// every-step actuation could first produce a different result.
    flags_dirty: Vec<bool>,
    live: Vec<bool>,
    /// Counter snapshots for the derived-at-flush step accounting.
    bases: Vec<LaneBases>,
}

impl HotPlanes {
    fn new(k: usize) -> Self {
        HotPlanes {
            t: vec![0.0; k],
            step_f: vec![0.0; k],
            energy_j: vec![0.0; k],
            busy_s: vec![0.0; k],
            last_total_w: vec![0.0; k],
            cpu_done: vec![0.0; k],
            gpu_done: vec![0.0; k],
            job_energy_j: vec![0.0; k],
            next_sample: vec![0.0; k],
            next_control: vec![0.0; k],
            timeout_s: vec![0.0; k],
            cpu_items: vec![0.0; k],
            gpu_items: vec![0.0; k],
            inc_cpu: vec![0.0; k],
            inc_gpu: vec![0.0; k],
            cpu_has_mapping: vec![false; k],
            cpu_busy: vec![false; k],
            gpu_busy: vec![false; k],
            flags_dirty: vec![false; k],
            live: vec![false; k],
            bases: vec![LaneBases::default(); k],
        }
    }

    /// Writes slot `slot`'s owned fields back into `sim` — the exact
    /// bits the scalar loop would hold at this boundary. The step and
    /// sub-step counters are derived from the admission bases plus the
    /// rounds lived since (`subs` sub-steps each — the count is a pure
    /// function of the pool's pinned `dt`, so it is constant across a
    /// residency); when zero rounds have elapsed `subs` is never
    /// consulted.
    fn flush(&self, slot: usize, sim: &mut CellSim, subs: u64) {
        sim.t = self.t[slot];
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let step_idx = self.step_f[slot] as u64;
        sim.step_idx = step_idx;
        sim.energy_j = self.energy_j[slot];
        sim.busy_s = self.busy_s[slot];
        sim.last_total_w = self.last_total_w[slot];
        let b = self.bases[slot];
        let d = step_idx - b.step_idx0;
        sim.scratch.obs.steps = b.steps0 + d;
        sim.scratch.obs.batched_steps = b.batched0 + d;
        sim.scratch.obs.substeps = b.substeps0 + d * subs;
        let j = &mut sim.active[0];
        j.cpu_done_items = self.cpu_done[slot];
        j.gpu_done_items = self.gpu_done[slot];
        j.energy_j = self.job_energy_j[slot];
    }

    /// Re-reads every mirrored field of slot `slot` from `sim`/`cache`
    /// and re-snapshots the counter bases (busy flags, dirtiness and
    /// liveness are fast-path state and survive untouched).
    #[allow(clippy::cast_precision_loss)] // step_idx ≪ 2⁵³
    fn reload(&mut self, slot: usize, sim: &CellSim, cache: &LaneCache) {
        self.t[slot] = sim.t;
        self.step_f[slot] = sim.step_idx as f64;
        self.energy_j[slot] = sim.energy_j;
        self.busy_s[slot] = sim.busy_s;
        self.last_total_w[slot] = sim.last_total_w;
        self.bases[slot] = LaneBases {
            step_idx0: sim.step_idx,
            steps0: sim.scratch.obs.steps,
            batched0: sim.scratch.obs.batched_steps,
            substeps0: sim.scratch.obs.substeps,
        };
        let j = &sim.active[0];
        self.cpu_done[slot] = j.cpu_done_items;
        self.gpu_done[slot] = j.gpu_done_items;
        self.job_energy_j[slot] = j.energy_j;
        self.next_sample[slot] = sim.next_sample;
        self.next_control[slot] = j.next_control;
        self.timeout_s[slot] = sim.timeout_s;
        self.cpu_items[slot] = j.cpu_items;
        self.gpu_items[slot] = j.gpu_items;
        self.inc_cpu[slot] = cache.inc_cpu;
        self.inc_gpu[slot] = cache.inc_gpu;
        self.cpu_has_mapping[slot] = !j.mapping.is_empty();
    }

    /// Clears slot `slot` back to the vacant state.
    fn clear(&mut self, slot: usize) {
        self.live[slot] = false;
        self.flags_dirty[slot] = false;
    }
}

impl LaneCache {
    fn for_sim(sim: &CellSim) -> Self {
        let j = &sim.active[0];
        let mut cache = LaneCache {
            model: NodePowerModel::single_app(
                &sim.board,
                j.mapping,
                sim.effective,
                !j.cpu_done(),
                !j.gpu_done(),
                j.chars.activity,
            ),
            inc_cpu: 0.0,
            inc_gpu: 0.0,
            effective: sim.effective,
            cpu_busy: !j.cpu_done(),
            gpu_busy: !j.gpu_done(),
            sample_mapping: combined_mapping(&sim.active, sim.cluster_cores),
            sample_activity: j.chars.activity,
            hotspot: HotspotSplit::default(),
        };
        cache.refresh_rates(sim);
        cache.refresh_hotspot(sim);
        cache
    }

    /// Re-derives the per-step progress increments — the exact
    /// expressions of the scalar progress phase with the singleton
    /// specialisation (`total_pressure` is the app's own sensitivity,
    /// one GPU sharer).
    fn refresh_rates(&mut self, sim: &CellSim) {
        let j = &sim.active[0];
        let total_pressure = j.chars.mem_sensitivity;
        let s = bandwidth_slowdown(
            j.chars.mem_sensitivity,
            total_pressure - j.chars.mem_sensitivity,
        );
        let gpu_sharers = 1.0_f64;
        self.inc_cpu =
            cpu_rate(&j.chars, j.mapping, sim.effective.big, sim.effective.little) * sim.dt / s;
        self.inc_gpu = gpu_rate(&j.chars, sim.effective.gpu) * sim.dt / (s * gpu_sharers);
    }

    fn rebuild_model(&mut self, sim: &CellSim) {
        let j = &sim.active[0];
        self.model = NodePowerModel::single_app(
            &sim.board,
            j.mapping,
            sim.effective,
            self.cpu_busy,
            self.gpu_busy,
            j.chars.activity,
        );
        self.refresh_hotspot(sim);
    }

    /// Re-folds the sample-time hotspot split — depends on exactly the
    /// inputs the model rebuild tracks (effective frequencies and the
    /// CPU busy flag; mapping and activity are residency-constant).
    fn refresh_hotspot(&mut self, sim: &CellSim) {
        self.hotspot = HotspotSplit::fold(
            &sim.board,
            self.sample_mapping,
            sim.effective,
            self.cpu_busy,
            self.sample_activity,
        );
    }

    /// Refreshes everything derived from the effective frequencies
    /// after an actuation changed them.
    fn refresh_operating_point(&mut self, sim: &CellSim) {
        self.effective = sim.effective;
        self.refresh_rates(sim);
        self.rebuild_model(sim);
    }
}

/// One cell resident in the pool: its runner, its suspended simulation,
/// its cache, and the bookkeeping for the occupancy metric.
struct PoolLane {
    runner: ScenarioRunner,
    sim: CellSim,
    cache: LaneCache,
    /// Caller-supplied identifier (the sweep uses the cell index).
    token: usize,
    /// `sim.scratch.obs.steps` at admission — the denominator baseline
    /// for the lane-occupancy metric.
    steps_at_entry: u64,
}

/// A cell leaving the pool, back in the caller's hands.
pub(crate) struct RetiredLane {
    /// The cell's runner, unchanged.
    pub(crate) runner: ScenarioRunner,
    /// The suspended simulation, its board's thermal state synced back
    /// from the batch lane. Positioned at a boundary the scalar
    /// [`ScenarioRunner::step_cell`] loop resumes exactly.
    pub(crate) sim: CellSim,
    /// The identifier the caller admitted the cell with.
    pub(crate) token: usize,
    /// `steps` at admission, for the occupancy metric.
    pub(crate) steps_at_entry: u64,
}

/// A K-lane lockstep pool over one shared [`ThermalBatch`].
///
/// The caller admits eligible cells ([`LockstepPool::admit`]), calls
/// [`LockstepPool::step_round`] while any lane is occupied, and
/// finishes every [`RetiredLane`] through the scalar
/// `step_cell`/`finish_cell` path (a completed lane terminates on the
/// first `step_cell` call, so both exit kinds share one code path).
pub(crate) struct LockstepPool {
    batch: ThermalBatch,
    scratch: BatchScratch,
    /// Every resident lane's frozen power coefficients in node-major
    /// SoA planes — the vectorized twin of the per-lane
    /// [`NodePowerModel`]s cached in the lanes, kept in sync at
    /// admission and at every operating-point refresh.
    power: BatchPowerModel,
    /// Per-lane total draw from the last power sweep (node-order sums,
    /// the scalar loop's `power.iter().sum()` bits).
    totals: Vec<f64>,
    /// The per-step-mutable mirror of each lane's state in SoA planes —
    /// the only per-lane memory the round's pre/post passes touch.
    /// Parallel to `lanes`; `hot.live[i]` tracks `lanes[i].is_some()`.
    hot: HotPlanes,
    /// Sub-steps per round under the pinned `dt` — refreshed after
    /// every batched thermal step (it is a pure function of `dt` and
    /// the topology, so any round's value serves the whole residency)
    /// and consumed by the derived sub-step accounting at flush.
    subs_per_round: u64,
    lanes: Vec<Option<PoolLane>>,
    /// Reused staging for the round's batched sensor sweep: every lane
    /// with a due sample queues its raw inputs here and all banks are
    /// read in one channel-major pass.
    sweep: SensorSweep,
    /// Slots queued into `sweep` this round, ascending; row `i` of the
    /// sweep belongs to `swept[i]`.
    swept: Vec<usize>,
    /// The integration step every resident lane shares (lockstep needs
    /// one `dt`); pinned by the first admission.
    dt: Option<f64>,
    /// Pool-level step observability: the batched power/thermal
    /// wall-time split (the per-cell kernels keep their own step and
    /// sub-step counts). Zero unless constructed instrumented.
    pub(crate) obs: StepObs,
    /// Lockstep rounds executed (each is one batched thermal step).
    pub(crate) rounds: u64,
    /// Lane-steps executed (live lanes summed over rounds).
    pub(crate) lane_steps: u64,
    /// Lane-slots offered (K × rounds) — the utilization denominator.
    pub(crate) lane_slots: u64,
}

impl LockstepPool {
    /// A pool of `k` lanes over `reference`'s thermal topology.
    /// Admission re-checks each cell's board against the batch, so a
    /// mismatching cell degrades to the scalar path instead of
    /// corrupting the lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub(crate) fn new(k: usize, reference: &ThermalModel, instrument: bool) -> Self {
        assert!(k >= 1, "a lockstep pool needs at least one lane");
        // The round's event/flip sets travel as u64 bitmasks; 64 lanes
        // is already far past the throughput sweet spot (and the sweep
        // API enforces the same bound).
        assert!(k <= 64, "a lockstep pool caps at 64 lanes");
        let batch = ThermalBatch::like(reference, k);
        let scratch = BatchScratch::for_batch(&batch);
        let power = BatchPowerModel::for_batch(&batch);
        let totals = vec![0.0; batch.stride()];
        let obs = StepObs {
            enabled: instrument,
            ..StepObs::default()
        };
        LockstepPool {
            batch,
            scratch,
            power,
            totals,
            hot: HotPlanes::new(k),
            subs_per_round: 0,
            lanes: (0..k).map(|_| None).collect(),
            sweep: SensorSweep::default(),
            swept: Vec::with_capacity(k),
            dt: None,
            obs,
            rounds: 0,
            lane_steps: 0,
            lane_slots: 0,
        }
    }

    /// `true` when at least one lane is free.
    pub(crate) fn has_free_lane(&self) -> bool {
        self.lanes.iter().any(Option::is_none)
    }

    /// `true` when no lane is occupied.
    pub(crate) fn is_empty(&self) -> bool {
        self.lanes.iter().all(Option::is_none)
    }

    /// `true` when `model` has the batch's exact topology — the same
    /// check admission applies. Exposed so the sweep's worker loop can
    /// rebuild a drained pool at a board-axis boundary instead of
    /// degrading every cell of the new board to scalar.
    pub(crate) fn matches_topology(&self, model: &ThermalModel) -> bool {
        self.batch.matches(model)
    }

    /// Admits a cell into a free lane. Returns the cell unchanged when
    /// it is not [`eligible_for_lockstep`], its thermal topology or
    /// `dt` does not match the pool, or no lane is free — the caller
    /// runs it scalar instead.
    // The Err variant intentionally hands the (large) cell back by
    // value — the caller owns it either way; no heap indirection needed.
    #[allow(clippy::result_large_err)]
    pub(crate) fn admit(
        &mut self,
        runner: ScenarioRunner,
        sim: CellSim,
        token: usize,
    ) -> Result<(), (ScenarioRunner, CellSim, usize)> {
        let dt_ok = self.dt.is_none_or(|dt| dt.to_bits() == sim.dt.to_bits());
        let slot = self.lanes.iter().position(Option::is_none);
        let Some(slot) = slot else {
            return Err((runner, sim, token));
        };
        if !eligible_for_lockstep(&sim) || !self.batch.matches(&sim.board.thermal) || !dt_ok {
            return Err((runner, sim, token));
        }
        self.dt = Some(sim.dt);
        self.batch.load_lane(slot, &sim.board.thermal);
        let cache = LaneCache::for_sim(&sim);
        self.power.set_lane(slot, &cache.model);
        self.hot.reload(slot, &sim, &cache);
        self.hot.cpu_busy[slot] = cache.cpu_busy;
        self.hot.gpu_busy[slot] = cache.gpu_busy;
        // Conservative: force one control/actuate pass on the first
        // batched step, matching the scalar loop's unconditional
        // per-step actuation without having to prove anything about
        // the admission instant.
        self.hot.flags_dirty[slot] = true;
        self.hot.live[slot] = true;
        let steps_at_entry = sim.scratch.obs.steps;
        self.lanes[slot] = Some(PoolLane {
            runner,
            sim,
            cache,
            token,
            steps_at_entry,
        });
        Ok(())
    }

    /// Evicts every resident lane *without* completing its round —
    /// the panic-recovery path. The partially-stepped simulations are
    /// dropped (mid-round state is not a valid scalar boundary); only
    /// the tokens come back, so the caller can re-run those cells from
    /// scratch.
    pub(crate) fn evict_all(&mut self) -> Vec<usize> {
        self.dt = None;
        let tokens: Vec<usize> = self
            .lanes
            .iter_mut()
            .filter_map(|slot| slot.take().map(|lane| lane.token))
            .collect();
        for slot in 0..self.lanes.len() {
            self.power.clear_lane(slot);
            self.hot.clear(slot);
        }
        tokens
    }

    /// Clears one retiring lane's slot: syncs the batch lane's thermal
    /// state back to the cell's own board and zeroes its power column.
    fn store_out(&mut self, slot: usize, lane: &mut PoolLane) {
        self.batch.store_lane(slot, &mut lane.sim.board.thermal);
        self.power.clear_lane(slot);
        self.hot.clear(slot);
        let kp = self.batch.stride();
        for i in 0..self.batch.nodes() {
            self.scratch.power[i * kp + slot] = 0.0;
        }
        if self.is_empty() {
            self.dt = None;
        }
    }

    /// Executes one lockstep round: every live lane advances exactly
    /// one engine step (the step the scalar loop would have taken),
    /// sharing a single batched thermal integration. Lanes that leave
    /// the fast regime — trip-point proximity at a sample, timeout, or
    /// completion — are pushed onto `retired` and their slots freed for
    /// the caller to refill.
    pub(crate) fn step_round(&mut self, retired: &mut Vec<RetiredLane>) {
        let k = self.lanes.len();
        self.swept.clear();
        self.sweep.clear();

        // --- Pre-pass vector scan: one branch-free sweep over the hot
        //     planes computes this round's event mask, runs the scalar
        //     progress phase for every fast-path lane (masked,
        //     branchless), and flags busy-flag flips. Scalar phase
        //     order within the step is preserved per lane; lanes are
        //     independent, so the lane processing order cannot affect
        //     any per-cell result. The common case (no sample due, no
        //     control due) is handled entirely here and never touches
        //     a cell's simulation. The event and flip sets come back as
        //     bitmasks, so the rare-case dispatch below walks set bits
        //     instead of re-scanning all K slots. ---
        let mut need_mask: u64 = 0;
        let mut flip_mask: u64 = 0;
        {
            let p = &mut self.hot;
            let t = &p.t[..k];
            let timeout_s = &p.timeout_s[..k];
            let next_sample = &p.next_sample[..k];
            let next_control = &p.next_control[..k];
            let flags_dirty = &p.flags_dirty[..k];
            let live = &p.live[..k];
            let cpu_items = &p.cpu_items[..k];
            let gpu_items = &p.gpu_items[..k];
            let inc_cpu = &p.inc_cpu[..k];
            let inc_gpu = &p.inc_gpu[..k];
            let cpu_has_mapping = &p.cpu_has_mapping[..k];
            let cpu_busy = &p.cpu_busy[..k];
            let gpu_busy = &p.gpu_busy[..k];
            let cpu_done = &mut p.cpu_done[..k];
            let gpu_done = &mut p.gpu_done[..k];
            // The `!(a >= b)` forms mirror the scalar loop's
            // `!j.cpu_done()` exactly, NaN edge included — do not
            // "simplify" to `<`. A masked-off slot adds +0.0, the
            // bit-identity on every value the done counters can hold
            // (they start at +0.0 and only ever grow).
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            for i in 0..k {
                let n = t[i] >= timeout_s[i]
                    || t[i] + 1e-12 >= next_sample[i]
                    || t[i] + 1e-12 >= next_control[i]
                    || flags_dirty[i];
                need_mask |= u64::from(n && live[i]) << i;
                let fast = live[i] && !n;
                let run_cpu = fast && cpu_has_mapping[i] && !(cpu_done[i] >= cpu_items[i]);
                cpu_done[i] += if run_cpu { inc_cpu[i] } else { 0.0 };
                let run_gpu = fast && !(gpu_done[i] >= gpu_items[i]);
                gpu_done[i] += if run_gpu { inc_gpu[i] } else { 0.0 };
                let busy_c = !(cpu_done[i] >= cpu_items[i]);
                let busy_g = !(gpu_done[i] >= gpu_items[i]);
                let flip = fast && (busy_c != cpu_busy[i] || busy_g != gpu_busy[i]);
                flip_mask |= u64::from(flip) << i;
            }
        }

        // --- Fast-path busy flips (a handful of steps per job):
        //     refresh the flipped lane's power model with the new share
        //     flags, exactly where the per-lane loop used to. ---
        while flip_mask != 0 {
            let slot = flip_mask.trailing_zeros() as usize;
            flip_mask &= flip_mask - 1;
            let lane = self.lanes[slot].as_mut().expect("live lane occupied");
            apply_flip(
                &mut self.hot,
                lane,
                &mut self.power,
                slot,
                self.subs_per_round,
            );
        }

        // --- Event lanes (a due sample, a due control tick, a timeout,
        //     or a deferred actuation): the rare per-lane slow paths,
        //     visited in ascending slot order (`swept` relies on it). ---
        while need_mask != 0 {
            let slot = need_mask.trailing_zeros() as usize;
            need_mask &= need_mask - 1;
            // A due sample on a non-timed-out lane stays hot: the raw
            // inputs — lane temperatures straight from the SoA batch
            // (the bits `store_lane` would have copied) and the scalar
            // sensing phase's hotspot powers — are queued for one
            // batched sensor sweep; the rest of the step runs in the
            // post-sweep pass. This also covers the common coincident
            // sample+control tick, so the board round-trip is elided on
            // every sampling step, not just sample-only ones.
            if self.hot.t[slot] < self.hot.timeout_s[slot]
                && self.hot.t[slot] + 1e-12 >= self.hot.next_sample[slot]
            {
                let lane = self.lanes[slot].as_ref().expect("live lane occupied");
                let nodes = lane.sim.board.nodes;
                let big_c = self.batch.lane_temp(nodes.big, slot);
                let gpu_c = self.batch.lane_temp(nodes.gpu, slot);
                // Mirrors the scalar `any(|j| !j.cpu_done())`.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let cpu_busy = !(self.hot.cpu_done[slot] >= self.hot.cpu_items[slot]);
                // The folded split is rebuilt at every operating-point
                // or busy-flag change, so between flips it holds the
                // event-time inputs; the guard covers the half-step
                // where progress flipped `cpu_busy` after this round's
                // sample queued but `apply_flip` has not refolded yet.
                debug_assert!(lane.sim.effective == lane.cache.effective);
                let core_power = if cpu_busy == lane.cache.cpu_busy {
                    lane.cache.hotspot.eval(big_c)
                } else {
                    big_core_hotspot_powers(
                        &lane.sim.board,
                        big_c,
                        lane.cache.sample_mapping,
                        lane.sim.effective,
                        cpu_busy,
                        lane.cache.sample_activity,
                    )
                };
                self.sweep.push_lane(big_c, core_power, gpu_c);
                self.swept.push(slot);
                continue;
            }
            let lane = self.lanes[slot].as_mut().expect("live lane occupied");
            let exit = pre_thermal_step(
                &mut self.hot,
                lane,
                &mut self.power,
                slot,
                self.subs_per_round,
            );
            if exit == PreExit::Handoff {
                let mut lane = self.lanes[slot].take().expect("lane occupied");
                self.store_out(slot, &mut lane);
                retired.push(RetiredLane {
                    runner: lane.runner,
                    sim: lane.sim,
                    token: lane.token,
                    steps_at_entry: lane.steps_at_entry,
                });
            }
        }

        // --- Batched sensor sweep: every due sample's bank read in one
        //     channel-major pass. Each lane owns its bank, so its noise
        //     stream advances in the exact scattered-read draw order —
        //     bit-identical readings per lane. ---
        if !self.swept.is_empty() {
            // Pool bookkeeping (collecting each swept lane's bank
            // borrow) stays outside the sampling bracket: the lap
            // attributes the sensor reads themselves. `swept` is built
            // in slot order, so peeling sorted disjoint `&mut`s off the
            // lane array visits O(swept) lanes, not all K.
            let mut banks: Vec<&mut SensorBank> = Vec::with_capacity(self.swept.len());
            let mut rest: &mut [Option<PoolLane>] = &mut self.lanes;
            let mut base = 0;
            for &slot in &self.swept {
                let (lane, tail) = rest[slot - base..]
                    .split_first_mut()
                    .expect("swept slot in range");
                banks.push(
                    &mut lane
                        .as_mut()
                        .expect("swept lane occupied")
                        .sim
                        .board
                        .sensors,
                );
                rest = tail;
                base = slot + 1;
            }
            let obs_t0 = self.obs.clock();
            read_lanes_with_hotspots(&mut banks, &mut self.sweep);
            self.obs.lap_sample(obs_t0);
        }

        // --- Post-sweep tail for sampled lanes, in the scalar step's
        //     order: record the row, trip check, control/actuate when
        //     they can matter, progress. Only a trip or a control tick
        //     touches the full simulation state. ---
        for row in 0..self.swept.len() {
            let slot = self.swept[row];
            let subs = self.subs_per_round;
            let lane = self.lanes[slot].as_mut().expect("swept lane occupied");
            let sim = &mut lane.sim;
            // The sensing phase's observable effects on the hot clock:
            // store the reading, record the row, advance the sample
            // grid (mirrored back so the event mask keeps tracking it).
            sim.t = self.hot.t[slot];
            sim.last_total_w = self.hot.last_total_w[slot];
            sim.readings = self.sweep.readings[row];
            sim.record_sample();
            self.hot.next_sample[slot] = sim.next_sample;
            // At or above trip: hand off before the control phase —
            // the scalar loop resumes with control, then trips in
            // actuation, exactly as it would have.
            if sim.readings.max_c() >= sim.zone.trip_c {
                self.hot.flush(slot, sim, subs);
                let mut lane = self.lanes[slot].take().expect("lane occupied");
                self.store_out(slot, &mut lane);
                retired.push(RetiredLane {
                    runner: lane.runner,
                    sim: lane.sim,
                    token: lane.token,
                    steps_at_entry: lane.steps_at_entry,
                });
                continue;
            }
            // Control and actuation, only when they can change anything
            // (same predicate as the sim path).
            let due = self.hot.t[slot] + 1e-12 >= self.hot.next_control[slot];
            if due || self.hot.flags_dirty[slot] {
                self.hot.flush(slot, sim, subs);
                let obs_t0 = sim.scratch.obs.clock();
                sim.phase_control();
                sim.phase_actuate();
                sim.scratch.obs.lap_control(obs_t0);
                if sim.effective != lane.cache.effective {
                    lane.cache.refresh_operating_point(sim);
                    self.power.set_lane(slot, &lane.cache.model);
                    self.hot.inc_cpu[slot] = lane.cache.inc_cpu;
                    self.hot.inc_gpu[slot] = lane.cache.inc_gpu;
                }
                // Control/actuate mutate only `next_control` and (via
                // the refresh above) the `effective`-derived rates:
                // every other mirrored field was just flushed and left
                // untouched, so the full reload round-trip is elided.
                self.hot.next_control[slot] = sim.active[0].next_control;
                self.hot.flags_dirty[slot] = false;
            }
            if progress_at(&mut self.hot, slot) {
                let lane = self.lanes[slot].as_mut().expect("swept lane occupied");
                apply_flip(
                    &mut self.hot,
                    lane,
                    &mut self.power,
                    slot,
                    self.subs_per_round,
                );
            }
        }

        let live = self.hot.live[..k].iter().filter(|&&b| b).count() as u64;
        if live == 0 {
            return;
        }

        // --- Power: one vectorized node-major sweep over every lane's
        //     frozen coefficients (bit-identical per lane to the
        //     strided scalar evaluation; cleared lanes read as zero).
        //     The per-lane energy accounting rides the post-thermal
        //     pass — it depends only on the totals computed here. ---
        let obs_t0 = self.obs.clock();
        self.power
            .eval_into(&self.batch, &mut self.scratch.power, &mut self.totals);
        self.obs.lap_power(obs_t0);

        // --- Thermal: one batched integration for every lane. The
        //     sub-step count is a function of (dt, max_stable_dt) only,
        //     so it is identical across lanes and to the scalar loop. ---
        let dt = self.dt.expect("dt pinned while lanes are resident");
        let obs_t0 = self.obs.clock();
        let substeps = batched_thermal_step(&mut self.batch, dt, &self.scratch);
        self.obs.lap_thermal(obs_t0);

        // The sub-step count is a pure function of the pinned `dt` (and
        // the topology), so any round's value serves every resident
        // lane's derived sub-step accounting.
        self.subs_per_round = u64::from(substeps);

        // --- Post-thermal vector pass: the scalar power phase's energy
        //     bookkeeping (using this round's totals) and the clock
        //     advance for every slot, branch-free. A vacant slot's
        //     total reads zero and its planes are fully rewritten at
        //     the next admission, so updating it is harmless. ---
        {
            let p = &mut self.hot;
            let totals = &self.totals[..k];
            let energy_j = &mut p.energy_j[..k];
            let busy_s = &mut p.busy_s[..k];
            let job_energy_j = &mut p.job_energy_j[..k];
            let last_total_w = &mut p.last_total_w[..k];
            let step_f = &mut p.step_f[..k];
            let t = &mut p.t[..k];
            for i in 0..k {
                energy_j[i] += totals[i] * dt;
                busy_s[i] += dt;
                job_energy_j[i] += totals[i] * dt;
                last_total_w[i] = totals[i];
                step_f[i] += 1.0;
                t[i] = step_f[i] * dt;
            }
        }

        // --- Completions (the scalar loop's tail, in its order): only
        //     a completing lane touches its simulation again. ---
        for slot in 0..k {
            if !self.hot.live[slot] {
                continue;
            }
            if self.hot.cpu_done[slot] >= self.hot.cpu_items[slot]
                && self.hot.gpu_done[slot] >= self.hot.gpu_items[slot]
            {
                let mut lane = self.lanes[slot].take().expect("lane occupied");
                self.hot.flush(slot, &mut lane.sim, self.subs_per_round);
                lane.sim.phase_completions();
                self.store_out(slot, &mut lane);
                retired.push(RetiredLane {
                    runner: lane.runner,
                    sim: lane.sim,
                    token: lane.token,
                    steps_at_entry: lane.steps_at_entry,
                });
            }
        }

        self.rounds += 1;
        self.lane_steps += live;
        self.lane_slots += k as u64;
    }
}

#[derive(PartialEq, Eq)]
enum PreExit {
    Continue,
    Handoff,
}

/// The scalar progress phase specialised to one app, entirely on the
/// hot planes (bit-identical expressions) — the slow-path twin of the
/// pre-pass vector scan, for event lanes that progress after their
/// control pass. Returns `true` when a busy flag flipped — the caller
/// must then rebuild the lane's power model (the scalar power phase
/// sees post-progress flags in the same step).
// The `!(a >= b)` forms mirror the scalar loop's `!j.cpu_done()`
// exactly, NaN edge included — do not "simplify" to `<`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
fn progress_at(p: &mut HotPlanes, slot: usize) -> bool {
    if !(p.cpu_done[slot] >= p.cpu_items[slot]) && p.cpu_has_mapping[slot] {
        p.cpu_done[slot] += p.inc_cpu[slot];
    }
    if !(p.gpu_done[slot] >= p.gpu_items[slot]) {
        p.gpu_done[slot] += p.inc_gpu[slot];
    }
    let cpu_busy = !(p.cpu_done[slot] >= p.cpu_items[slot]);
    let gpu_busy = !(p.gpu_done[slot] >= p.gpu_items[slot]);
    cpu_busy != p.cpu_busy[slot] || gpu_busy != p.gpu_busy[slot]
}

/// Applies a busy-flag flip: refreshes the lane's power model with the
/// new share flags now, and marks actuation dirty so the next step runs
/// the control/actuate pass (the scalar loop ran actuation *before*
/// progress, so frequencies can first react one step later).
#[allow(clippy::neg_cmp_op_on_partial_ord)] // mirrors `!j.cpu_done()`
fn apply_flip(
    p: &mut HotPlanes,
    lane: &mut PoolLane,
    power: &mut BatchPowerModel,
    slot: usize,
    subs: u64,
) {
    let cpu_busy = !(p.cpu_done[slot] >= p.cpu_items[slot]);
    let gpu_busy = !(p.gpu_done[slot] >= p.gpu_items[slot]);
    p.cpu_busy[slot] = cpu_busy;
    p.gpu_busy[slot] = gpu_busy;
    lane.cache.cpu_busy = cpu_busy;
    lane.cache.gpu_busy = gpu_busy;
    let sim = &mut lane.sim;
    p.flush(slot, sim, subs);
    lane.cache.rebuild_model(sim);
    power.set_lane(slot, &lane.cache.model);
    p.flags_dirty[slot] = true;
}

/// One lane's pre-thermal slice of the engine step for the non-sample
/// cases: the scalar loop's timeout check, control and actuation (when
/// they can matter), and progress — through the shared [`CellSim`]
/// phase methods (bracketed by hot-mirror flush/reload) or the mirrored
/// exact expressions. Due samples never reach this function: they are
/// gathered into the round's batched sensor sweep by `step_round` and
/// finished in its post-sweep pass.
fn pre_thermal_step(
    p: &mut HotPlanes,
    lane: &mut PoolLane,
    power: &mut BatchPowerModel,
    slot: usize,
    subs: u64,
) -> PreExit {
    // Timeout first, as the scalar loop checks it (before sampling).
    // The scalar step_cell will re-detect it and terminate the cell.
    if p.t[slot] >= p.timeout_s[slot] {
        p.flush(slot, &mut lane.sim, subs);
        return PreExit::Handoff;
    }

    // Control and actuation, only when they can change anything: a due
    // control tick, or a busy-flag flip last step. Otherwise
    // `arbitrate_freqs` inputs are unchanged and the zone poll below
    // trip is a no-op — the scalar loop's every-step actuation provably
    // recomputes the same `effective`.
    let due = p.t[slot] + 1e-12 >= p.next_control[slot];
    if due || p.flags_dirty[slot] {
        let sim = &mut lane.sim;
        p.flush(slot, sim, subs);
        let obs_t0 = sim.scratch.obs.clock();
        sim.phase_control();
        sim.phase_actuate();
        sim.scratch.obs.lap_control(obs_t0);
        if sim.effective != lane.cache.effective {
            lane.cache.refresh_operating_point(sim);
            power.set_lane(slot, &lane.cache.model);
            p.inc_cpu[slot] = lane.cache.inc_cpu;
            p.inc_gpu[slot] = lane.cache.inc_gpu;
        }
        // Same slim reload as the post-sweep control block: control and
        // actuation touch only `next_control` and the rates mirrored
        // above.
        p.next_control[slot] = sim.active[0].next_control;
        p.flags_dirty[slot] = false;
    }

    // Progress: the scalar phase specialised to one app, with the
    // mirrored per-step increments (bit-identical expressions).
    if progress_at(p, slot) {
        apply_flip(p, lane, power, slot, subs);
    }
    PreExit::Continue
}

/// Runs one cell entirely through the pool: scalar warm-up until
/// eligible, lockstep rounds until the cell retires, scalar finish —
/// the single-cell harness the parity tests drive. The runner is
/// consumed because cells move through the pool by value. Panics are
/// not caught.
#[cfg(test)]
pub(crate) fn run_cell_lockstep(
    mut runner: ScenarioRunner,
    scenario: &crate::scenario::Scenario,
    k: usize,
) -> Result<crate::exec::ScenarioResult, teem_linreg::LinregError> {
    let mut sim = runner.prepare_cell(scenario)?;
    loop {
        if eligible_for_lockstep(&sim) {
            break;
        }
        if !runner.step_cell(&mut sim)? {
            return Ok(runner.finish_cell(sim));
        }
    }
    // Built from the warmed cell's own board, so the harness drives
    // whatever topology the runner was configured with (the many-node
    // parity tests lean on this).
    let mut pool = LockstepPool::new(k, &sim.board.thermal, false);
    assert!(
        pool.admit(runner, sim, 0).is_ok(),
        "eligible cell must admit"
    );
    let mut retired = Vec::new();
    while retired.is_empty() {
        pool.step_round(&mut retired);
    }
    let r = retired.pop().expect("one lane retires");
    let mut runner = r.runner;
    let mut sim = r.sim;
    while runner.step_cell(&mut sim)? {}
    Ok(runner.finish_cell(sim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use teem_core::runner::Approach;
    use teem_workload::App;

    #[test]
    fn single_lane_lockstep_matches_scalar_bitwise() {
        let sc = Scenario::new("one").arrive(0.0, App::Mvt, 0.9);
        let mut scalar = ScenarioRunner::new(Approach::Teem);
        let a = scalar.run(&sc).expect("scalar runs");
        let batched = ScenarioRunner::new(Approach::Teem);
        let b = run_cell_lockstep(batched, &sc, 1).expect("lockstep runs");
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.trace.digest(), b.trace.digest(), "bit-identical trace");
        assert_eq!(a.kernel.steps, b.kernel.steps);
        assert!(b.kernel.batched_steps > 0, "fast path engaged");
        assert_eq!(a.kernel.batched_steps, 0, "scalar path never batches");
    }

    #[test]
    fn ineligible_cell_is_returned_at_admission() {
        let sc = Scenario::new("one").arrive(0.0, App::Mvt, 0.9);
        let mut runner = ScenarioRunner::new(Approach::Teem);
        let sim = runner.prepare_cell(&sc).expect("prepares");
        // Fresh cell: nothing active yet, so not eligible.
        assert!(!eligible_for_lockstep(&sim));
        let reference = teem_soc::Board::odroid_xu4_ideal();
        let mut pool = LockstepPool::new(2, &reference.thermal, false);
        let r = pool.admit(runner, sim, 7);
        let (_, _, token) = r.expect_err("ineligible cell comes back");
        assert_eq!(token, 7);
        assert!(pool.is_empty());
    }
}
