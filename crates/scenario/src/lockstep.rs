//! The batched lockstep execution path: K sweep cells stepped in SIMD
//! lockstep through one shared [`ThermalBatch`].
//!
//! A sweep grid multiplies a handful of scenarios by knob axes, so at
//! any instant a worker holds many cells running the *same physics* at
//! different operating points. The scalar loop steps them one at a
//! time, re-deriving per-step constants (power coefficients, progress
//! rates, frequency arbitration) every 10 ms tick even though they only
//! change at control decisions. This module exploits both redundancies:
//!
//! * **SoA thermal lockstep** — each admitted cell owns one lane of a
//!   [`ThermalBatch`]; one [`batched_thermal_step`] integrates all K RC
//!   networks through the autovectorized `F64xN` kernel.
//! * **Frozen operating points** — between control ticks a solo cell's
//!   effective frequencies, power coefficients and progress rates are
//!   provably constant, so the fast path caches them
//!   ([`NodePowerModel`], per-step progress increments) and re-derives
//!   only at a control tick or a busy-flag flip.
//!
//! # Exactness, not approximation
//!
//! The pool produces **bit-identical** results to the scalar loop; the
//! parity suite pins it. Three mechanisms make that provable:
//!
//! 1. Cells are admitted only while [`eligible_for_lockstep`]: a single
//!    active app, queue drained, timeline exhausted, thermal zone idle
//!    and below trip. In that regime every scalar phase the fast path
//!    skips (event dispatch, launches, gap fast-forward, per-step zone
//!    polling below trip) is a no-op by its own guard.
//! 2. The phases the fast path *does* run go through the same
//!    [`CellSim`] methods as the scalar loop (`phase_sample`,
//!    `phase_control`, `phase_actuate`, `phase_completions`), and the
//!    cached power/progress values are built from the identical
//!    expressions the scalar loop evaluates (pinned bitwise by the
//!    `teem-soc` batch tests).
//! 3. **Divergence is a handoff, not a special case.** The moment a
//!    lane leaves the fast regime — a sensor sample at or above the
//!    zone's trip point, or the executor timeout — its thermal state is
//!    stored back to its own board and the cell returns to the scalar
//!    [`ScenarioRunner::step_cell`] loop at a phase boundary the scalar
//!    loop itself would have reached. Sibling lanes are untouched.

use teem_soc::perf::{cpu_rate, gpu_rate};
use teem_soc::{
    batched_thermal_step, BatchPowerModel, BatchScratch, ClusterFreqs, NodePowerModel, StepObs,
    ThermalBatch, ThermalModel,
};
use teem_workload::bandwidth_slowdown;

use crate::exec::{CellSim, ScenarioRunner, TraceIds};

/// `true` when `sim` is in the regime the lockstep fast path models
/// exactly: one active app, nothing queued, no timeline events left,
/// the reactive thermal zone idle with the latest sensor reading below
/// its trip point, and the executor timeout not yet reached.
///
/// Under these invariants the scalar phases the fast path skips are
/// all provably no-ops: the event loop's cursor is exhausted, the
/// launch loop breaks on the empty queue, the gap fast-forward needs an
/// empty active set, and the zone's `update` below trip returns `None`
/// without mutating state.
pub(crate) fn eligible_for_lockstep(sim: &CellSim) -> bool {
    sim.active.len() == 1
        && sim.queue.is_empty()
        && sim.next_ev >= sim.events.len()
        && !sim.zone.is_capping()
        && sim.readings.max_c() < sim.zone.trip_c
        && !sim.timed_out
        && sim.t < sim.timeout_s
}

/// The per-lane cache of everything that is constant between control
/// decisions: the frozen power model, the per-step progress increments,
/// the operating point they were derived at, and the pre-resolved trace
/// channel ids.
struct LaneCache {
    model: NodePowerModel,
    /// `cpu_rate(..) * dt / s` at the cached operating point — the
    /// exact expression the scalar progress phase evaluates per step.
    inc_cpu: f64,
    /// `gpu_rate(..) * dt / (s * gpu_sharers)` likewise (`gpu_sharers`
    /// is always 1.0 for a solo app).
    inc_gpu: f64,
    /// The effective frequencies the caches were derived at.
    effective: ClusterFreqs,
    /// Busy flags the power model was built with (the scalar loop's
    /// `!cpu_done()` / `!gpu_done()` share flags).
    cpu_busy: bool,
    gpu_busy: bool,
    ids: TraceIds,
}

/// The per-step-mutable slice of one lane's state, mirrored out of the
/// sprawling [`CellSim`] into a compact struct the lockstep inner loop
/// keeps cache-resident: a round's pre/post passes touch only this
/// array (plus the SoA batch vectors), not K scattered simulations.
///
/// # Sync protocol
///
/// The mirror **owns** its fields while the lane is resident: the fast
/// path mutates only the hot copy. Before any call back into `CellSim`
/// code (a sensor sample, a control/actuate pass, completion handling,
/// retirement), [`flush_hot`] writes the owned fields back; after the
/// call, [`reload_hot`] re-reads every mirrored field (the sim code may
/// have advanced `next_sample`/`next_control` or refreshed the cached
/// rates). Every mirrored expression the fast path evaluates —
/// progress increments, `done()` comparisons, energy accounting, the
/// `t = step_idx · dt` clock — is the identical IEEE expression on
/// identical values, so residency moves without touching a single bit.
#[derive(Clone, Copy, Default)]
struct HotLane {
    // Owned while resident (flushed back to the sim at boundaries).
    t: f64,
    step_idx: u64,
    energy_j: f64,
    busy_s: f64,
    last_total_w: f64,
    steps: u64,
    batched_steps: u64,
    substeps: u64,
    cpu_done_items: f64,
    gpu_done_items: f64,
    job_energy_j: f64,
    // Read-only mirrors (refreshed from the sim/cache after sync points).
    next_sample: f64,
    next_control: f64,
    timeout_s: f64,
    cpu_items: f64,
    gpu_items: f64,
    inc_cpu: f64,
    inc_gpu: f64,
    cpu_has_mapping: bool,
    // Fast-path-only state (no sim twin).
    cpu_busy: bool,
    gpu_busy: bool,
    /// Set when a busy flag flipped during the previous step's progress
    /// phase (or at admission): the next step must run the
    /// control/actuate phases because `arbitrate_freqs` may now pick
    /// different frequencies — exactly when the scalar loop's
    /// every-step actuation could first produce a different result.
    flags_dirty: bool,
    live: bool,
}

/// Writes the hot mirror's owned fields back into `sim` — the exact
/// bits the scalar loop would hold at this boundary.
fn flush_hot(hot: &HotLane, sim: &mut CellSim) {
    sim.t = hot.t;
    sim.step_idx = hot.step_idx;
    sim.energy_j = hot.energy_j;
    sim.busy_s = hot.busy_s;
    sim.last_total_w = hot.last_total_w;
    sim.scratch.obs.steps = hot.steps;
    sim.scratch.obs.batched_steps = hot.batched_steps;
    sim.scratch.obs.substeps = hot.substeps;
    let j = &mut sim.active[0];
    j.cpu_done_items = hot.cpu_done_items;
    j.gpu_done_items = hot.gpu_done_items;
    j.energy_j = hot.job_energy_j;
}

/// Re-reads every mirrored field from `sim`/`cache` (busy flags,
/// dirtiness and liveness are fast-path state and survive untouched).
fn reload_hot(hot: &mut HotLane, sim: &CellSim, cache: &LaneCache) {
    hot.t = sim.t;
    hot.step_idx = sim.step_idx;
    hot.energy_j = sim.energy_j;
    hot.busy_s = sim.busy_s;
    hot.last_total_w = sim.last_total_w;
    hot.steps = sim.scratch.obs.steps;
    hot.batched_steps = sim.scratch.obs.batched_steps;
    hot.substeps = sim.scratch.obs.substeps;
    let j = &sim.active[0];
    hot.cpu_done_items = j.cpu_done_items;
    hot.gpu_done_items = j.gpu_done_items;
    hot.job_energy_j = j.energy_j;
    hot.next_sample = sim.next_sample;
    hot.next_control = j.next_control;
    hot.timeout_s = sim.timeout_s;
    hot.cpu_items = j.cpu_items;
    hot.gpu_items = j.gpu_items;
    hot.inc_cpu = cache.inc_cpu;
    hot.inc_gpu = cache.inc_gpu;
    hot.cpu_has_mapping = !j.mapping.is_empty();
}

impl LaneCache {
    fn for_sim(sim: &CellSim) -> Self {
        let j = &sim.active[0];
        let mut cache = LaneCache {
            model: NodePowerModel::single_app(
                &sim.board,
                j.mapping,
                sim.effective,
                !j.cpu_done(),
                !j.gpu_done(),
                j.chars.activity,
            ),
            inc_cpu: 0.0,
            inc_gpu: 0.0,
            effective: sim.effective,
            cpu_busy: !j.cpu_done(),
            gpu_busy: !j.gpu_done(),
            ids: TraceIds::resolve(&sim.trace),
        };
        cache.refresh_rates(sim);
        cache
    }

    /// Re-derives the per-step progress increments — the exact
    /// expressions of the scalar progress phase with the singleton
    /// specialisation (`total_pressure` is the app's own sensitivity,
    /// one GPU sharer).
    fn refresh_rates(&mut self, sim: &CellSim) {
        let j = &sim.active[0];
        let total_pressure = j.chars.mem_sensitivity;
        let s = bandwidth_slowdown(
            j.chars.mem_sensitivity,
            total_pressure - j.chars.mem_sensitivity,
        );
        let gpu_sharers = 1.0_f64;
        self.inc_cpu =
            cpu_rate(&j.chars, j.mapping, sim.effective.big, sim.effective.little) * sim.dt / s;
        self.inc_gpu = gpu_rate(&j.chars, sim.effective.gpu) * sim.dt / (s * gpu_sharers);
    }

    fn rebuild_model(&mut self, sim: &CellSim) {
        let j = &sim.active[0];
        self.model = NodePowerModel::single_app(
            &sim.board,
            j.mapping,
            sim.effective,
            self.cpu_busy,
            self.gpu_busy,
            j.chars.activity,
        );
    }

    /// Refreshes everything derived from the effective frequencies
    /// after an actuation changed them.
    fn refresh_operating_point(&mut self, sim: &CellSim) {
        self.effective = sim.effective;
        self.refresh_rates(sim);
        self.rebuild_model(sim);
    }
}

/// One cell resident in the pool: its runner, its suspended simulation,
/// its cache, and the bookkeeping for the occupancy metric.
struct PoolLane {
    runner: ScenarioRunner,
    sim: CellSim,
    cache: LaneCache,
    /// Caller-supplied identifier (the sweep uses the cell index).
    token: usize,
    /// `sim.scratch.obs.steps` at admission — the denominator baseline
    /// for the lane-occupancy metric.
    steps_at_entry: u64,
}

/// A cell leaving the pool, back in the caller's hands.
pub(crate) struct RetiredLane {
    /// The cell's runner, unchanged.
    pub(crate) runner: ScenarioRunner,
    /// The suspended simulation, its board's thermal state synced back
    /// from the batch lane. Positioned at a boundary the scalar
    /// [`ScenarioRunner::step_cell`] loop resumes exactly.
    pub(crate) sim: CellSim,
    /// The identifier the caller admitted the cell with.
    pub(crate) token: usize,
    /// `steps` at admission, for the occupancy metric.
    pub(crate) steps_at_entry: u64,
}

/// A K-lane lockstep pool over one shared [`ThermalBatch`].
///
/// The caller admits eligible cells ([`LockstepPool::admit`]), calls
/// [`LockstepPool::step_round`] while any lane is occupied, and
/// finishes every [`RetiredLane`] through the scalar
/// `step_cell`/`finish_cell` path (a completed lane terminates on the
/// first `step_cell` call, so both exit kinds share one code path).
pub(crate) struct LockstepPool {
    batch: ThermalBatch,
    scratch: BatchScratch,
    /// Every resident lane's frozen power coefficients in node-major
    /// SoA planes — the vectorized twin of the per-lane
    /// [`NodePowerModel`]s cached in the lanes, kept in sync at
    /// admission and at every operating-point refresh.
    power: BatchPowerModel,
    /// Per-lane total draw from the last power sweep (node-order sums,
    /// the scalar loop's `power.iter().sum()` bits).
    totals: Vec<f64>,
    /// The per-step-mutable mirror of each lane's state — the only
    /// per-lane memory the round's pre/post passes touch. Parallel to
    /// `lanes`; `hot[i].live` tracks `lanes[i].is_some()`.
    hot: Vec<HotLane>,
    lanes: Vec<Option<PoolLane>>,
    /// The integration step every resident lane shares (lockstep needs
    /// one `dt`); pinned by the first admission.
    dt: Option<f64>,
    /// Pool-level step observability: the batched power/thermal
    /// wall-time split (the per-cell kernels keep their own step and
    /// sub-step counts). Zero unless constructed instrumented.
    pub(crate) obs: StepObs,
    /// Lockstep rounds executed (each is one batched thermal step).
    pub(crate) rounds: u64,
    /// Lane-steps executed (live lanes summed over rounds).
    pub(crate) lane_steps: u64,
    /// Lane-slots offered (K × rounds) — the utilization denominator.
    pub(crate) lane_slots: u64,
}

impl LockstepPool {
    /// A pool of `k` lanes over `reference`'s thermal topology.
    /// Admission re-checks each cell's board against the batch, so a
    /// mismatching cell degrades to the scalar path instead of
    /// corrupting the lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub(crate) fn new(k: usize, reference: &ThermalModel, instrument: bool) -> Self {
        assert!(k >= 1, "a lockstep pool needs at least one lane");
        let batch = ThermalBatch::like(reference, k);
        let scratch = BatchScratch::for_batch(&batch);
        let power = BatchPowerModel::for_batch(&batch);
        let totals = vec![0.0; batch.stride()];
        let obs = StepObs {
            enabled: instrument,
            ..StepObs::default()
        };
        LockstepPool {
            batch,
            scratch,
            power,
            totals,
            hot: vec![HotLane::default(); k],
            lanes: (0..k).map(|_| None).collect(),
            dt: None,
            obs,
            rounds: 0,
            lane_steps: 0,
            lane_slots: 0,
        }
    }

    /// `true` when at least one lane is free.
    pub(crate) fn has_free_lane(&self) -> bool {
        self.lanes.iter().any(Option::is_none)
    }

    /// `true` when no lane is occupied.
    pub(crate) fn is_empty(&self) -> bool {
        self.lanes.iter().all(Option::is_none)
    }

    /// Admits a cell into a free lane. Returns the cell unchanged when
    /// it is not [`eligible_for_lockstep`], its thermal topology or
    /// `dt` does not match the pool, or no lane is free — the caller
    /// runs it scalar instead.
    // The Err variant intentionally hands the (large) cell back by
    // value — the caller owns it either way; no heap indirection needed.
    #[allow(clippy::result_large_err)]
    pub(crate) fn admit(
        &mut self,
        runner: ScenarioRunner,
        sim: CellSim,
        token: usize,
    ) -> Result<(), (ScenarioRunner, CellSim, usize)> {
        let dt_ok = self.dt.is_none_or(|dt| dt.to_bits() == sim.dt.to_bits());
        let slot = self.lanes.iter().position(Option::is_none);
        let Some(slot) = slot else {
            return Err((runner, sim, token));
        };
        if !eligible_for_lockstep(&sim) || !self.batch.matches(&sim.board.thermal) || !dt_ok {
            return Err((runner, sim, token));
        }
        self.dt = Some(sim.dt);
        self.batch.load_lane(slot, &sim.board.thermal);
        let cache = LaneCache::for_sim(&sim);
        self.power.set_lane(slot, &cache.model);
        let mut hot = HotLane {
            cpu_busy: cache.cpu_busy,
            gpu_busy: cache.gpu_busy,
            // Conservative: force one control/actuate pass on the first
            // batched step, matching the scalar loop's unconditional
            // per-step actuation without having to prove anything about
            // the admission instant.
            flags_dirty: true,
            live: true,
            ..HotLane::default()
        };
        reload_hot(&mut hot, &sim, &cache);
        self.hot[slot] = hot;
        let steps_at_entry = sim.scratch.obs.steps;
        self.lanes[slot] = Some(PoolLane {
            runner,
            sim,
            cache,
            token,
            steps_at_entry,
        });
        Ok(())
    }

    /// Evicts every resident lane *without* completing its round —
    /// the panic-recovery path. The partially-stepped simulations are
    /// dropped (mid-round state is not a valid scalar boundary); only
    /// the tokens come back, so the caller can re-run those cells from
    /// scratch.
    pub(crate) fn evict_all(&mut self) -> Vec<usize> {
        self.dt = None;
        let tokens: Vec<usize> = self
            .lanes
            .iter_mut()
            .filter_map(|slot| slot.take().map(|lane| lane.token))
            .collect();
        for slot in 0..self.lanes.len() {
            self.power.clear_lane(slot);
            self.hot[slot] = HotLane::default();
        }
        tokens
    }

    /// Clears one retiring lane's slot: syncs the batch lane's thermal
    /// state back to the cell's own board and zeroes its power column.
    fn store_out(&mut self, slot: usize, lane: &mut PoolLane) {
        self.batch.store_lane(slot, &mut lane.sim.board.thermal);
        self.power.clear_lane(slot);
        self.hot[slot] = HotLane::default();
        let kp = self.batch.stride();
        for i in 0..self.batch.nodes() {
            self.scratch.power[i * kp + slot] = 0.0;
        }
        if self.is_empty() {
            self.dt = None;
        }
    }

    /// Executes one lockstep round: every live lane advances exactly
    /// one engine step (the step the scalar loop would have taken),
    /// sharing a single batched thermal integration. Lanes that leave
    /// the fast regime — trip-point proximity at a sample, timeout, or
    /// completion — are pushed onto `retired` and their slots freed for
    /// the caller to refill.
    pub(crate) fn step_round(&mut self, retired: &mut Vec<RetiredLane>) {
        let k = self.lanes.len();

        // --- Per-lane pre-thermal phases (sampling, control, progress).
        //     Scalar phase order within the step is preserved per lane;
        //     lanes are independent, so the lane interleaving order
        //     cannot affect any per-cell result. The common case (no
        //     sample due, no control due) runs entirely on the compact
        //     hot mirror and never touches the cell's simulation. ---
        for slot in 0..k {
            let batch = &self.batch;
            let power = &mut self.power;
            let hot = &mut self.hot[slot];
            if !hot.live {
                continue;
            }
            if !needs_sim(hot) {
                // Fast path: progress on the mirror alone; only a busy
                // flip (a handful of steps per job) reaches the lane.
                if progress_hot(hot) {
                    let lane = self.lanes[slot].as_mut().expect("live lane occupied");
                    apply_flip(hot, lane, power, slot);
                }
                continue;
            }
            let lane = self.lanes[slot].as_mut().expect("live lane occupied");
            if pre_thermal_step(hot, lane, batch, power, slot) == PreExit::Handoff {
                let mut lane = self.lanes[slot].take().expect("lane occupied");
                self.store_out(slot, &mut lane);
                retired.push(RetiredLane {
                    runner: lane.runner,
                    sim: lane.sim,
                    token: lane.token,
                    steps_at_entry: lane.steps_at_entry,
                });
            }
        }

        let live = self.hot.iter().filter(|h| h.live).count() as u64;
        if live == 0 {
            return;
        }

        // --- Power: one vectorized node-major sweep over every lane's
        //     frozen coefficients (bit-identical per lane to the
        //     strided scalar evaluation; cleared lanes read as zero).
        //     The per-lane energy accounting rides the post-thermal
        //     pass — it depends only on the totals computed here. ---
        let obs_t0 = self.obs.clock();
        self.power
            .eval_into(&self.batch, &mut self.scratch.power, &mut self.totals);
        self.obs.lap_power(obs_t0);

        // --- Thermal: one batched integration for every lane. The
        //     sub-step count is a function of (dt, max_stable_dt) only,
        //     so it is identical across lanes and to the scalar loop. ---
        let dt = self.dt.expect("dt pinned while lanes are resident");
        let obs_t0 = self.obs.clock();
        let substeps = batched_thermal_step(&mut self.batch, dt, &self.scratch);
        self.obs.lap_thermal(obs_t0);

        // --- Per-lane post-thermal: energy accounting (the scalar
        //     power phase's bookkeeping, using this round's totals),
        //     counters, clock advance, completions (the scalar loop's
        //     tail, in its order) — all on the hot mirror; only a
        //     completing lane touches its simulation again. ---
        for slot in 0..k {
            let hot = &mut self.hot[slot];
            if !hot.live {
                continue;
            }
            let total = self.totals[slot];
            hot.energy_j += total * dt;
            hot.busy_s += dt;
            hot.job_energy_j += total * dt;
            hot.last_total_w = total;
            hot.steps += 1;
            hot.batched_steps += 1;
            hot.substeps += u64::from(substeps);
            hot.step_idx += 1;
            hot.t = hot.step_idx as f64 * dt;
            if hot.cpu_done_items >= hot.cpu_items && hot.gpu_done_items >= hot.gpu_items {
                let mut lane = self.lanes[slot].take().expect("lane occupied");
                flush_hot(hot, &mut lane.sim);
                lane.sim.phase_completions();
                self.store_out(slot, &mut lane);
                retired.push(RetiredLane {
                    runner: lane.runner,
                    sim: lane.sim,
                    token: lane.token,
                    steps_at_entry: lane.steps_at_entry,
                });
            }
        }

        self.rounds += 1;
        self.lane_steps += live;
        self.lane_slots += k as u64;
    }
}

#[derive(PartialEq, Eq)]
enum PreExit {
    Continue,
    Handoff,
}

/// `true` when this step needs the lane's full simulation: a timeout,
/// a due sample, a due control tick, or a deferred actuation from a
/// busy-flag flip. Everything it reads lives on the hot mirror, so the
/// common all-false case costs four compares on one cache-resident
/// struct and never touches the multi-kilobyte [`PoolLane`].
#[inline(always)]
fn needs_sim(hot: &HotLane) -> bool {
    hot.t >= hot.timeout_s
        || hot.t + 1e-12 >= hot.next_sample
        || hot.t + 1e-12 >= hot.next_control
        || hot.flags_dirty
}

/// The scalar progress phase specialised to one app, entirely on the
/// hot mirror (bit-identical expressions). Returns `true` when a busy
/// flag flipped — the caller must then rebuild the lane's power model
/// (the scalar power phase sees post-progress flags in the same step).
// The `!(a >= b)` forms mirror the scalar loop's `!j.cpu_done()`
// exactly, NaN edge included — do not "simplify" to `<`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
fn progress_hot(hot: &mut HotLane) -> bool {
    if !(hot.cpu_done_items >= hot.cpu_items) && hot.cpu_has_mapping {
        hot.cpu_done_items += hot.inc_cpu;
    }
    if !(hot.gpu_done_items >= hot.gpu_items) {
        hot.gpu_done_items += hot.inc_gpu;
    }
    let cpu_busy = !(hot.cpu_done_items >= hot.cpu_items);
    let gpu_busy = !(hot.gpu_done_items >= hot.gpu_items);
    cpu_busy != hot.cpu_busy || gpu_busy != hot.gpu_busy
}

/// Applies a busy-flag flip: refreshes the lane's power model with the
/// new share flags now, and marks actuation dirty so the next step runs
/// the control/actuate pass (the scalar loop ran actuation *before*
/// progress, so frequencies can first react one step later).
#[allow(clippy::neg_cmp_op_on_partial_ord)] // mirrors `!j.cpu_done()`
fn apply_flip(hot: &mut HotLane, lane: &mut PoolLane, power: &mut BatchPowerModel, slot: usize) {
    let cpu_busy = !(hot.cpu_done_items >= hot.cpu_items);
    let gpu_busy = !(hot.gpu_done_items >= hot.gpu_items);
    hot.cpu_busy = cpu_busy;
    hot.gpu_busy = gpu_busy;
    lane.cache.cpu_busy = cpu_busy;
    lane.cache.gpu_busy = gpu_busy;
    let sim = &mut lane.sim;
    flush_hot(hot, sim);
    lane.cache.rebuild_model(sim);
    power.set_lane(slot, &lane.cache.model);
    hot.flags_dirty = true;
}

/// One lane's pre-thermal slice of the engine step: the scalar loop's
/// timeout check, sampling, control and actuation (when they can
/// matter), and progress — through the shared [`CellSim`] phase
/// methods (bracketed by hot-mirror flush/reload) or the mirrored
/// exact expressions.
fn pre_thermal_step(
    hot: &mut HotLane,
    lane: &mut PoolLane,
    batch: &ThermalBatch,
    power: &mut BatchPowerModel,
    slot: usize,
) -> PreExit {
    // Timeout first, as the scalar loop checks it (before sampling).
    // The scalar step_cell will re-detect it and terminate the cell.
    if hot.t >= hot.timeout_s {
        flush_hot(hot, &mut lane.sim);
        return PreExit::Handoff;
    }

    // Sampling at the trace cadence — same predicate, same phase code
    // (by pre-resolved channel id). The true temperatures live in the
    // batch lane while the cell is resident, so they are synced back to
    // the cell's own board first — sensors must quantise the same bits
    // the scalar loop's board would hold. A sample is also the only
    // instant the zone's input can cross the trip point, so the trip
    // check rides on it: at or above trip, hand off *before* the
    // control phase — the scalar loop resumes with control, then trips
    // in actuation, exactly as it would have.
    if hot.t + 1e-12 >= hot.next_sample {
        let sim = &mut lane.sim;
        flush_hot(hot, sim);
        batch.store_lane(slot, &mut sim.board.thermal);
        sim.phase_sample(Some(&lane.cache.ids));
        if sim.readings.max_c() >= sim.zone.trip_c {
            return PreExit::Handoff;
        }
        reload_hot(hot, sim, &lane.cache);
    }

    // Control and actuation, only when they can change anything: a due
    // control tick, or a busy-flag flip last step. Otherwise
    // `arbitrate_freqs` inputs are unchanged and the zone poll below
    // trip is a no-op — the scalar loop's every-step actuation provably
    // recomputes the same `effective`.
    let due = hot.t + 1e-12 >= hot.next_control;
    if due || hot.flags_dirty {
        let sim = &mut lane.sim;
        flush_hot(hot, sim);
        sim.phase_control();
        sim.phase_actuate();
        if sim.effective != lane.cache.effective {
            lane.cache.refresh_operating_point(sim);
            power.set_lane(slot, &lane.cache.model);
        }
        reload_hot(hot, sim, &lane.cache);
        hot.flags_dirty = false;
    }

    // Progress: the scalar phase specialised to one app, with the
    // mirrored per-step increments (bit-identical expressions).
    if progress_hot(hot) {
        apply_flip(hot, lane, power, slot);
    }
    PreExit::Continue
}

/// Runs one cell entirely through the pool: scalar warm-up until
/// eligible, lockstep rounds until the cell retires, scalar finish —
/// the single-cell harness the parity tests drive. The runner is
/// consumed because cells move through the pool by value. Panics are
/// not caught.
#[cfg(test)]
pub(crate) fn run_cell_lockstep(
    mut runner: ScenarioRunner,
    scenario: &crate::scenario::Scenario,
    k: usize,
) -> Result<crate::exec::ScenarioResult, teem_linreg::LinregError> {
    let reference = teem_soc::Board::odroid_xu4_ideal();
    let mut pool = LockstepPool::new(k, &reference.thermal, false);
    let mut sim = runner.prepare_cell(scenario)?;
    loop {
        if eligible_for_lockstep(&sim) {
            break;
        }
        if !runner.step_cell(&mut sim)? {
            return Ok(runner.finish_cell(sim));
        }
    }
    assert!(
        pool.admit(runner, sim, 0).is_ok(),
        "eligible cell must admit"
    );
    let mut retired = Vec::new();
    while retired.is_empty() {
        pool.step_round(&mut retired);
    }
    let r = retired.pop().expect("one lane retires");
    let mut runner = r.runner;
    let mut sim = r.sim;
    while runner.step_cell(&mut sim)? {}
    Ok(runner.finish_cell(sim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use teem_core::runner::Approach;
    use teem_workload::App;

    #[test]
    fn single_lane_lockstep_matches_scalar_bitwise() {
        let sc = Scenario::new("one").arrive(0.0, App::Mvt, 0.9);
        let mut scalar = ScenarioRunner::new(Approach::Teem);
        let a = scalar.run(&sc).expect("scalar runs");
        let batched = ScenarioRunner::new(Approach::Teem);
        let b = run_cell_lockstep(batched, &sc, 1).expect("lockstep runs");
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.trace.digest(), b.trace.digest(), "bit-identical trace");
        assert_eq!(a.kernel.steps, b.kernel.steps);
        assert!(b.kernel.batched_steps > 0, "fast path engaged");
        assert_eq!(a.kernel.batched_steps, 0, "scalar path never batches");
    }

    #[test]
    fn ineligible_cell_is_returned_at_admission() {
        let sc = Scenario::new("one").arrive(0.0, App::Mvt, 0.9);
        let mut runner = ScenarioRunner::new(Approach::Teem);
        let sim = runner.prepare_cell(&sc).expect("prepares");
        // Fresh cell: nothing active yet, so not eligible.
        assert!(!eligible_for_lockstep(&sim));
        let reference = teem_soc::Board::odroid_xu4_ideal();
        let mut pool = LockstepPool::new(2, &reference.thermal, false);
        let r = pool.admit(runner, sim, 7);
        let (_, _, token) = r.expect_err("ineligible cell comes back");
        assert_eq!(token, 7);
        assert!(pool.is_empty());
    }
}
