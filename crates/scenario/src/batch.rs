//! The parallel batch runner: fan a scenario × approach matrix across
//! workers and aggregate the per-run summaries into one comparison
//! table.
//!
//! Since the streaming refactor this is a thin collect-and-reorder
//! wrapper over the [`SweepSpec`] engine: the matrix is expressed as a
//! two-axis sweep (scenarios outermost, approaches innermost), executed
//! by the work-stealing streaming executor, and the streamed cells are
//! buffered back into deterministic scenario-major order. Running a
//! matrix through the wrapper is bit-identical to the pre-streaming
//! fan-out (pinned by the golden-digest tests); grids that are too big
//! to buffer should use [`SweepSpec::run_streaming`] directly.

use crate::arbiter::ContentionPolicy;
use crate::exec::ScenarioResult;
use crate::scenario::Scenario;
use crate::sweep::{ConfigPatch, SweepError, SweepSpec};
use teem_core::runner::Approach;
use teem_soc::SimConfig;
use teem_telemetry::{scenario_table, ScenarioSummary};

/// Runs scenario × approach matrices in parallel.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    config: Option<SimConfig>,
    patch: ConfigPatch,
    contention: ContentionPolicy,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A batch runner using every available core.
    pub fn new() -> Self {
        BatchRunner {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            config: None,
            patch: ConfigPatch::default(),
            contention: ContentionPolicy::Serial,
        }
    }

    /// Caps the worker count (1 ⇒ sequential — useful for determinism
    /// A/B tests).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker");
        self.threads = threads;
        self
    }

    /// Overrides the executor configuration for every run — wholesale,
    /// including the timeout. Prefer [`BatchRunner::with_config_patch`],
    /// which starts from the scenario-scale defaults instead of
    /// whatever the caller zeroed.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Overrides configuration fields on top of
    /// [`crate::ScenarioRunner::default_config`] (so the 10 000 s
    /// scenario timeout survives unless the patch itself names
    /// `timeout_s`). Applied on top of [`BatchRunner::with_config`] if
    /// both are set.
    pub fn with_config_patch(mut self, patch: ConfigPatch) -> Self {
        self.patch = patch;
        self
    }

    /// Sets the contention policy every cell runs under (default:
    /// [`ContentionPolicy::Serial`], the paper's one-app-at-a-time
    /// model).
    pub fn with_contention(mut self, policy: ContentionPolicy) -> Self {
        self.contention = policy;
        self
    }

    /// The two-axis [`SweepSpec`] this matrix is executed as.
    fn spec(&self, scenarios: &[Scenario], approaches: &[Approach]) -> SweepSpec {
        let mut spec = SweepSpec::over(scenarios.to_vec())
            .approaches(approaches)
            .contentions(&[self.contention])
            .patch_config(self.patch)
            .threads(self.threads);
        if let Some(config) = self.config {
            spec = spec.config(config);
        }
        spec
    }

    /// Executes every `scenario` under every `approach` and returns the
    /// results scenario-major (`scenarios[0]` under each approach
    /// first), regardless of worker scheduling.
    ///
    /// A panicking cell no longer takes the whole matrix down (the PR 1
    /// behaviour poisoned the result buffer): the panic is caught on
    /// its worker, every other cell still runs, and the error names the
    /// failed cell.
    ///
    /// # Errors
    ///
    /// [`SweepError::Profiling`] for a profiling failure of any app
    /// appearing in the scenarios; [`SweepError::Cell`] naming the
    /// failed cell if one errored or panicked.
    pub fn run_matrix(
        &self,
        scenarios: &[Scenario],
        approaches: &[Approach],
    ) -> Result<Vec<ScenarioResult>, SweepError> {
        if scenarios.is_empty() || approaches.is_empty() {
            return Ok(Vec::new());
        }
        self.spec(scenarios, approaches).run_collect()
    }

    /// Convenience: run the matrix and format the summaries as a
    /// comparison table.
    ///
    /// # Errors
    ///
    /// Propagates failures as [`BatchRunner::run_matrix`].
    pub fn comparison_table(
        &self,
        scenarios: &[Scenario],
        approaches: &[Approach],
    ) -> Result<(Vec<ScenarioResult>, String), SweepError> {
        let results = self.run_matrix(scenarios, approaches)?;
        let summaries: Vec<ScenarioSummary> = results.iter().map(|r| r.summary.clone()).collect();
        Ok((results, scenario_table(&summaries)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AppRequest, ScenarioEvent};
    use teem_workload::App;

    #[test]
    fn matrix_is_scenario_major_and_complete() {
        let scenarios = vec![
            Scenario::new("a").arrive(0.0, App::Mvt, 0.9),
            Scenario::new("b").arrive(0.0, App::Syrk, 0.9),
        ];
        let approaches = [Approach::Teem, Approach::Ondemand];
        let results = BatchRunner::new()
            .run_matrix(&scenarios, &approaches)
            .expect("profiles fit");
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].summary.scenario, "a");
        assert_eq!(results[0].summary.approach, "TEEM");
        assert_eq!(results[1].summary.scenario, "a");
        assert_eq!(results[1].summary.approach, "ondemand");
        assert_eq!(results[2].summary.scenario, "b");
        assert_eq!(results[3].summary.scenario, "b");
        for r in &results {
            assert_eq!(r.summary.apps_completed(), 1);
            assert!(!r.timed_out);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let scenarios =
            vec![Scenario::new("a")
                .arrive(0.0, App::Mvt, 0.9)
                .arrive(1.0, App::Gesummv, 0.9)];
        let approaches = [Approach::Teem, Approach::Eemp];
        let par = BatchRunner::new()
            .run_matrix(&scenarios, &approaches)
            .expect("runs");
        let seq = BatchRunner::new()
            .with_threads(1)
            .run_matrix(&scenarios, &approaches)
            .expect("runs");
        let par: Vec<ScenarioSummary> = par.into_iter().map(|r| r.summary).collect();
        let seq: Vec<ScenarioSummary> = seq.into_iter().map(|r| r.summary).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_matrix_is_empty() {
        let results = BatchRunner::new()
            .run_matrix(&[], &[Approach::Teem])
            .expect("trivially");
        assert!(results.is_empty());
        let results = BatchRunner::new()
            .run_matrix(&[Scenario::new("x")], &[])
            .expect("trivially");
        assert!(results.is_empty());
    }

    #[test]
    fn panicking_cell_yields_an_error_naming_it_not_a_poisoned_crash() {
        // PR 1's runner crashed the *caller* with a poisoned-mutex
        // expect when any worker panicked; now the panic is contained,
        // the sibling cells complete, and the error names the cell.
        let poison = Scenario::new("poison-cell").at(
            0.0,
            ScenarioEvent::Arrival(AppRequest::new(App::Mvt, 0.9).with_threshold(500.0)),
        );
        let good = Scenario::new("good").arrive(0.0, App::Gesummv, 0.9);
        let err = BatchRunner::new()
            .run_matrix(&[poison, good], &[Approach::Teem])
            .expect_err("the poisoned cell must surface as an error");
        let msg = err.to_string();
        assert!(msg.contains("poison-cell"), "names the cell: {msg}");
        assert!(msg.contains("panicked"), "says what happened: {msg}");
    }

    #[test]
    fn config_patch_keeps_scenario_scale_timeout() {
        // The PR 1 footgun: with_config(SimConfig::default()) silently
        // clamps the scenario timeout to the single-run 1 000 s. The
        // patch path starts from default_config() instead.
        let scenarios = vec![Scenario::new("a").arrive(0.0, App::Mvt, 0.9)];
        let patched = BatchRunner::new()
            .with_config_patch(ConfigPatch {
                sample_period_s: Some(0.2),
                ..ConfigPatch::default()
            })
            .run_matrix(&scenarios, &[Approach::Teem])
            .expect("runs");
        assert!(!patched[0].timed_out);
        // Same patch on top of an explicit full config: patch wins for
        // the fields it names.
        let spec = BatchRunner::new()
            .with_config(crate::ScenarioRunner::default_config())
            .with_config_patch(ConfigPatch {
                timeout_s: Some(123.0),
                ..ConfigPatch::default()
            })
            .spec(&scenarios, &[Approach::Teem]);
        assert_eq!(spec.resolved_config().timeout_s, 123.0);
    }
}
