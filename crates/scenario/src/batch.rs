//! The parallel batch runner: fan a scenario × approach matrix across
//! `std::thread` workers and aggregate the per-run summaries into one
//! comparison table.
//!
//! Every cell of the matrix is an independent simulation on its own
//! fresh board, so the fan-out is embarrassingly parallel; profiles are
//! computed once up front and shared (an [`teem_core::AppProfile`] is
//! plain data). Results come back in deterministic scenario-major order
//! regardless of worker scheduling.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::arbiter::ContentionPolicy;
use crate::exec::{ScenarioResult, ScenarioRunner};
use crate::scenario::Scenario;
use teem_core::offline::build_profile_store;
use teem_core::runner::Approach;
use teem_soc::{Board, SimConfig};
use teem_telemetry::{scenario_table, ScenarioSummary};
use teem_workload::App;

/// Runs scenario × approach matrices in parallel.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    config: Option<SimConfig>,
    contention: ContentionPolicy,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A batch runner using every available core.
    pub fn new() -> Self {
        BatchRunner {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            config: None,
            contention: ContentionPolicy::Serial,
        }
    }

    /// Caps the worker count (1 ⇒ sequential — useful for determinism
    /// A/B tests).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker");
        self.threads = threads;
        self
    }

    /// Overrides the executor configuration for every run.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the contention policy every cell runs under (default:
    /// [`ContentionPolicy::Serial`], the paper's one-app-at-a-time
    /// model).
    pub fn with_contention(mut self, policy: ContentionPolicy) -> Self {
        self.contention = policy;
        self
    }

    /// Executes every `scenario` under every `approach` and returns the
    /// results scenario-major (`scenarios[0]` under each approach first).
    ///
    /// # Errors
    ///
    /// Propagates a profiling failure for any app appearing in the
    /// scenarios.
    pub fn run_matrix(
        &self,
        scenarios: &[Scenario],
        approaches: &[Approach],
    ) -> Result<Vec<ScenarioResult>, teem_linreg::LinregError> {
        let total = scenarios.len() * approaches.len();
        if total == 0 {
            return Ok(Vec::new());
        }

        // Profile every app once, up front, on the ideal board. The set
        // dedups across scenarios in O(n log n) (App is `Ord`; insertion
        // order is irrelevant because the store itself is keyed), and
        // the finished store is shared with every worker by `Arc` — one
        // store for the whole matrix, not a clone per cell.
        let apps: BTreeSet<App> = scenarios.iter().flat_map(Scenario::apps).collect();
        let profiles = build_profile_store(&Board::odroid_xu4_ideal(), apps)?.into_shared();

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<ScenarioResult, teem_linreg::LinregError>>>> =
            Mutex::new((0..total).map(|_| None).collect());
        let workers = self.threads.min(total);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let scenario = &scenarios[idx / approaches.len()];
                    let approach = approaches[idx % approaches.len()];
                    let mut runner =
                        ScenarioRunner::with_shared_profiles(approach, Arc::clone(&profiles))
                            .with_contention(self.contention);
                    if let Some(cfg) = self.config {
                        runner = runner.with_config(cfg);
                    }
                    let result = runner.run(scenario);
                    slots.lock().expect("no poisoned worker")[idx] = Some(result);
                });
            }
        });

        slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|r| r.expect("every cell filled"))
            .collect()
    }

    /// Convenience: run the matrix and format the summaries as a
    /// comparison table.
    ///
    /// # Errors
    ///
    /// Propagates a profiling failure, as [`BatchRunner::run_matrix`].
    pub fn comparison_table(
        &self,
        scenarios: &[Scenario],
        approaches: &[Approach],
    ) -> Result<(Vec<ScenarioResult>, String), teem_linreg::LinregError> {
        let results = self.run_matrix(scenarios, approaches)?;
        let summaries: Vec<ScenarioSummary> = results.iter().map(|r| r.summary.clone()).collect();
        Ok((results, scenario_table(&summaries)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teem_workload::App;

    #[test]
    fn matrix_is_scenario_major_and_complete() {
        let scenarios = vec![
            Scenario::new("a").arrive(0.0, App::Mvt, 0.9),
            Scenario::new("b").arrive(0.0, App::Syrk, 0.9),
        ];
        let approaches = [Approach::Teem, Approach::Ondemand];
        let results = BatchRunner::new()
            .run_matrix(&scenarios, &approaches)
            .expect("profiles fit");
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].summary.scenario, "a");
        assert_eq!(results[0].summary.approach, "TEEM");
        assert_eq!(results[1].summary.scenario, "a");
        assert_eq!(results[1].summary.approach, "ondemand");
        assert_eq!(results[2].summary.scenario, "b");
        assert_eq!(results[3].summary.scenario, "b");
        for r in &results {
            assert_eq!(r.summary.apps_completed(), 1);
            assert!(!r.timed_out);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let scenarios =
            vec![Scenario::new("a")
                .arrive(0.0, App::Mvt, 0.9)
                .arrive(1.0, App::Gesummv, 0.9)];
        let approaches = [Approach::Teem, Approach::Eemp];
        let par = BatchRunner::new()
            .run_matrix(&scenarios, &approaches)
            .expect("runs");
        let seq = BatchRunner::new()
            .with_threads(1)
            .run_matrix(&scenarios, &approaches)
            .expect("runs");
        let par: Vec<ScenarioSummary> = par.into_iter().map(|r| r.summary).collect();
        let seq: Vec<ScenarioSummary> = seq.into_iter().map(|r| r.summary).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_matrix_is_empty() {
        let results = BatchRunner::new()
            .run_matrix(&[], &[Approach::Teem])
            .expect("trivially");
        assert!(results.is_empty());
    }
}
