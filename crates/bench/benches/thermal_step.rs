//! Thermal-network integration throughput — the engine's hottest loop —
//! plus steady-state solves.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_soc::Board;

fn main() {
    let mut r = Runner::from_args();
    let board = Board::odroid_xu4_ideal();
    let powers = vec![6.0, 0.6, 2.6, 2.2];

    let mut model = board.thermal.clone();
    r.bench("thermal_step_10ms", || {
        model.step(black_box(0.01), black_box(&powers))
    });

    let mut model = board.thermal.clone();
    r.bench("thermal_step_1s_substepped", || {
        model.step(black_box(1.0), black_box(&powers))
    });

    r.bench("thermal_steady_state_solve", || {
        board.thermal.steady_state(black_box(&powers))
    });

    r.finish();
}
