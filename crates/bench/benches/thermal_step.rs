//! Criterion: thermal-network integration throughput — the engine's
//! hottest loop — plus steady-state solves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teem_soc::Board;

fn bench_thermal(c: &mut Criterion) {
    let board = Board::odroid_xu4_ideal();
    let powers = vec![6.0, 0.6, 2.6, 2.2];

    c.bench_function("thermal_step_10ms", |b| {
        let mut model = board.thermal.clone();
        b.iter(|| model.step(black_box(0.01), black_box(&powers)))
    });

    c.bench_function("thermal_step_1s_substepped", |b| {
        let mut model = board.thermal.clone();
        b.iter(|| model.step(black_box(1.0), black_box(&powers)))
    });

    c.bench_function("thermal_steady_state_solve", |b| {
        b.iter(|| board.thermal.steady_state(black_box(&powers)))
    });
}

criterion_group!(benches, bench_thermal);
criterion_main!(benches);
