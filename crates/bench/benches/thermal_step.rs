//! Thermal-network integration throughput — the engine's hottest loop —
//! plus the in-place power model and the combined physics step kernel
//! (power + integration), i.e. exactly what one `dt` of simulated time
//! costs. The `it/s` column is the steps/sec throughput figure.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_soc::{
    idle_node_powers_into, node_powers_for, node_powers_into, Board, ClusterFreqs, CpuMapping, MHz,
    StepScratch,
};
use teem_workload::App;

fn main() {
    let mut r = Runner::from_args();
    let board = Board::odroid_xu4_ideal();
    let powers = vec![6.0, 0.6, 2.6, 2.2];

    let mut model = board.thermal.clone();
    r.bench("thermal_step_10ms", || {
        model.step(black_box(0.01), black_box(&powers))
    });

    let mut model = board.thermal.clone();
    r.bench("thermal_step_1s_substepped", || {
        model.step(black_box(1.0), black_box(&powers))
    });

    r.bench("thermal_steady_state_solve", || {
        board.thermal.steady_state(black_box(&powers))
    });

    // The power model alone: allocating wrapper vs in-place — the
    // delta the zero-allocation refactor buys per step.
    let freqs = ClusterFreqs {
        big: MHz(1600),
        little: MHz(1400),
        gpu: MHz(600),
    };
    let mapping = CpuMapping::new(2, 3);
    let activity = App::Covariance.characteristics().activity;
    let temps = vec![83.0, 61.0, 74.0, 46.0];
    r.bench("node_powers_alloc", || {
        node_powers_for(
            black_box(&board),
            mapping,
            freqs,
            true,
            true,
            activity,
            black_box(&temps),
        )
    });
    let mut scratch = StepScratch::for_board(&board);
    r.bench("node_powers_into", || {
        node_powers_into(
            black_box(&board),
            mapping,
            freqs,
            true,
            true,
            activity,
            black_box(&temps),
            &mut scratch.power,
        )
    });

    // The full physics step kernel as the engines run it every dt:
    // busy power from live temperatures, then one Euler step. The it/s
    // column is simulation steps per second.
    let mut sim_board = Board::odroid_xu4_ideal();
    let mut scratch = StepScratch::for_board(&sim_board);
    r.bench("physics_step_kernel_busy", || {
        node_powers_into(
            &sim_board,
            mapping,
            freqs,
            true,
            true,
            activity,
            sim_board.thermal.temps(),
            &mut scratch.power,
        );
        sim_board.thermal.step(black_box(0.01), &scratch.power)
    });

    let mut idle_board = Board::odroid_xu4_ideal();
    let idle_freqs = ClusterFreqs::min_of(&idle_board);
    let mut scratch = StepScratch::for_board(&idle_board);
    r.bench("physics_step_kernel_idle", || {
        idle_node_powers_into(
            &idle_board,
            idle_freqs,
            idle_board.thermal.temps(),
            &mut scratch.power,
        );
        idle_board.thermal.step(black_box(0.01), &scratch.power)
    });

    r.finish();
}
