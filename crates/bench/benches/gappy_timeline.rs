//! Event-driven time-advance benchmarks: fixed-dt vs event-driven on
//! the two timeline shapes that bracket the design space.
//!
//! * `dense_timeline_*` — a back-to-back arrival train with no idle
//!   gaps: the event-driven mode must ride the identical active-phase
//!   stepper, so the two clocks should land within noise of each other
//!   (the parity half of the contract; bit-identity is pinned by the
//!   `event_driven.rs` tests).
//! * `gappy_timeline_*` — four short bursts separated by 500 s of
//!   idle: the event-driven mode advances the gaps in closed form and
//!   the speedup is the headline number, printed at the end together
//!   with the simulated-seconds-per-wall-second rate of each clock.

use std::cell::Cell;
use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_core::runner::Approach;
use teem_scenario::{ConfigPatch, Scenario, ScenarioRunner};
use teem_soc::TimeAdvance;
use teem_workload::App;

/// No idle anywhere: arrivals land before the previous app finishes.
fn dense() -> Scenario {
    Scenario::new("bench-dense")
        .arrive(0.0, App::Mvt, 0.9)
        .arrive(2.0, App::Gesummv, 0.9)
        .arrive(4.0, App::Syrk, 0.9)
        .arrive(6.0, App::Mvt, 0.9)
}

/// ~85% idle: four ~52 s bursts spread 500 s apart.
fn gappy() -> Scenario {
    Scenario::new("bench-gappy")
        .arrive(0.0, App::Mvt, 0.9)
        .arrive(500.0, App::Mvt, 0.9)
        .arrive(1_000.0, App::Mvt, 0.9)
        .arrive(1_500.0, App::Mvt, 0.9)
}

/// Runs `scenario` under TEEM with the given clock; returns the
/// simulated makespan (black-boxed work product).
fn run(scenario: &Scenario, advance: TimeAdvance) -> f64 {
    let r = ScenarioRunner::new(Approach::Teem)
        .with_config(
            ConfigPatch {
                time_advance: Some(advance),
                ..ConfigPatch::default()
            }
            .onto_default(),
        )
        .run(scenario)
        .expect("scenario runs");
    assert!(!r.timed_out);
    r.summary.makespan_s
}

/// One (shape, clock) benchmark; returns (best wall s, makespan s).
fn bench_mode(r: &mut Runner, name: &str, scenario: &Scenario, advance: TimeAdvance) -> (f64, f64) {
    let best = Cell::new(f64::INFINITY);
    let makespan = Cell::new(0.0f64);
    r.bench_heavy(name, 1, || {
        let t0 = std::time::Instant::now();
        let m = run(black_box(scenario), advance);
        best.set(best.get().min(t0.elapsed().as_secs_f64()));
        makespan.set(m);
        m
    });
    (best.get(), makespan.get())
}

fn main() {
    let mut r = Runner::from_args();

    let dense_scenario = dense();
    let gappy_scenario = gappy();

    let results = [
        bench_mode(
            &mut r,
            "dense_timeline_fixed_dt",
            &dense_scenario,
            TimeAdvance::FixedDt,
        ),
        bench_mode(
            &mut r,
            "dense_timeline_event_driven",
            &dense_scenario,
            TimeAdvance::EventDriven,
        ),
        bench_mode(
            &mut r,
            "gappy_timeline_fixed_dt",
            &gappy_scenario,
            TimeAdvance::FixedDt,
        ),
        bench_mode(
            &mut r,
            "gappy_timeline_event_driven",
            &gappy_scenario,
            TimeAdvance::EventDriven,
        ),
    ];

    // Derived report: simulated seconds per wall second for each
    // clock, plus the gap-shape speedup (the headline).
    if results.iter().all(|(wall, _)| wall.is_finite()) {
        let names = [
            "dense_timeline_fixed_dt",
            "dense_timeline_event_driven",
            "gappy_timeline_fixed_dt",
            "gappy_timeline_event_driven",
        ];
        println!();
        for (name, (wall, makespan)) in names.iter().zip(&results) {
            println!(
                "{name:<36} {:>12.2e} simulated s/s",
                makespan / wall.max(1e-12)
            );
        }
        let dense_ratio = results[0].0 / results[1].0.max(1e-12);
        let gappy_ratio = results[2].0 / results[3].0.max(1e-12);
        println!("dense speedup (event/fixed)          {dense_ratio:>11.2}x  (parity expected)");
        println!("gappy speedup (event/fixed)          {gappy_ratio:>11.2}x");
    }

    r.finish();
}
