//! Criterion: design-space machinery — eq. (1)/(2) enumeration, the
//! 10 368-point diverse sample, analytic design-point evaluation, and
//! EEMP LUT construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teem_core::baselines::Eemp;
use teem_dse::{enumerate, evaluate, sample, DesignPoint};
use teem_soc::{Board, ClusterFreqs, CpuMapping, MHz};
use teem_workload::{App, Partition};

fn bench_design_space(c: &mut Criterion) {
    let board = Board::odroid_xu4_ideal();
    let chars = App::Covariance.characteristics();

    c.bench_function("enumerate_full_space_257040", |b| {
        b.iter(|| enumerate::full_space(black_box(&board)).count())
    });

    c.bench_function("diverse_sample_10368", |b| {
        b.iter(|| sample::diverse_sample().len())
    });

    let dp = DesignPoint {
        mapping: CpuMapping::new(2, 3),
        freqs: ClusterFreqs {
            big: MHz(1500),
            little: MHz(1400),
            gpu: MHz(600),
        },
        partition: Partition::even(),
    };
    c.bench_function("predict_one_design_point", |b| {
        b.iter(|| evaluate::predict(black_box(&board), black_box(&chars), black_box(&dp)))
    });

    c.bench_function("eemp_lut_build_128", |b| {
        b.iter(|| Eemp::build(black_box(&board), App::Covariance))
    });
}

criterion_group!(benches, bench_design_space);
criterion_main!(benches);
