//! Design-space machinery — eq. (1)/(2) enumeration, the 10 368-point
//! diverse sample, analytic design-point evaluation, and EEMP LUT
//! construction.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_core::baselines::Eemp;
use teem_dse::{enumerate, evaluate, sample, DesignPoint};
use teem_soc::{Board, ClusterFreqs, CpuMapping, MHz};
use teem_workload::{App, Partition};

fn main() {
    let mut r = Runner::from_args();
    let board = Board::odroid_xu4_ideal();
    let chars = App::Covariance.characteristics();

    r.bench("enumerate_full_space_257040", || {
        enumerate::full_space(black_box(&board)).count()
    });

    r.bench("diverse_sample_10368", || sample::diverse_sample().len());

    let dp = DesignPoint {
        mapping: CpuMapping::new(2, 3),
        freqs: ClusterFreqs {
            big: MHz(1500),
            little: MHz(1400),
            gpu: MHz(600),
        },
        partition: Partition::even(),
    };
    r.bench("predict_one_design_point", || {
        evaluate::predict(black_box(&board), black_box(&chars), black_box(&dp))
    });

    r.bench("eemp_lut_build_128", || {
        Eemp::build(black_box(&board), App::Covariance)
    });

    r.finish();
}
