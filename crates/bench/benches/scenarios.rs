//! Scenario-engine benchmarks: timeline construction, one full
//! multi-app scenario execution under TEEM, a three-app co-run under
//! the shared contention policy (the N-app power-superposition path),
//! the parallel batch matrix, and a thresholds × ambients grid sweep
//! over the builtin suite — the thousands-of-scenario parameter-grid
//! shape the zero-allocation hot path exists for.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_core::offline::build_profile_store;
use teem_core::runner::Approach;
use teem_scenario::{
    BatchRunner, ContentionPolicy, Scenario, ScenarioRunner, SweepEvent, SweepSpec,
};
use teem_soc::Board;
use teem_telemetry::SweepAggregator;
use teem_workload::App;

fn main() {
    let mut r = Runner::from_args();

    r.bench("builtin_suite_construction", || {
        Scenario::builtin_suite().len()
    });

    let sc = Scenario::back_to_back("bench-b2b", &[App::Mvt, App::Gesummv, App::Syrk], 2.0, 0.9);
    let profiles = build_profile_store(&Board::odroid_xu4_ideal(), sc.apps()).expect("profiles");

    let p = profiles.clone();
    r.bench_heavy("scenario_3apps_teem", 2, move || {
        let mut runner = ScenarioRunner::with_profiles(Approach::Teem, p.clone());
        runner.run(black_box(&sc)).expect("runs")
    });

    // Co-running: three simultaneous arrivals under the shared policy —
    // keeps the N-app aggregation path (per-domain power superposition
    // in co_run_node_powers_into, bandwidth-slowdown progress, frequency
    // arbitration) perf-exercised alongside the serial path above.
    let co = Scenario::new("bench-corun")
        .arrive(0.0, App::Mvt, 0.9)
        .arrive(0.0, App::Syrk, 0.9)
        .arrive(0.0, App::Gesummv, 0.9);
    let p = profiles.clone();
    r.bench_heavy("scenario_corun_shared_teem", 2, move || {
        let mut runner = ScenarioRunner::with_profiles(Approach::Teem, p.clone())
            .with_contention(ContentionPolicy::Shared { max_apps: 3 });
        runner.run(black_box(&co)).expect("runs")
    });

    let scenarios = vec![
        Scenario::back_to_back("m1", &[App::Mvt, App::Syrk], 2.0, 0.9),
        Scenario::periodic("m2", App::Gesummv, 40.0, 2, 0.9),
    ];
    r.bench_heavy("batch_matrix_2x4", 1, move || {
        BatchRunner::new()
            .run_matrix(black_box(&scenarios), &Approach::all())
            .expect("runs")
            .len()
    });

    // The scenario-scale shape: a thresholds × ambients parameter grid
    // over the whole builtin suite (2 × 2 × 5 = 20 cells) — expressed
    // as sweep axes and executed by the streaming work-stealing engine,
    // aggregated online (nothing buffered). This is the workload the
    // per-step allocation removal targets; per-cell cost is this
    // time / 20.
    let spec = SweepSpec::over(Scenario::builtin_suite())
        .approaches(&[Approach::Teem])
        .thresholds_c(&[82.0, 85.0])
        .ambients_c(&[20.0, 30.0]);
    let cells = spec.cells();
    assert_eq!(cells, 20);
    r.bench_heavy("grid_sweep_20_scenarios_teem", 1, move || {
        let mut agg = SweepAggregator::new();
        let stats = black_box(&spec)
            .run_streaming(|ev| {
                if let SweepEvent::CellDone { result, .. } = ev {
                    agg.record(&result.summary);
                }
            })
            .expect("runs");
        assert_eq!(stats.completed, cells);
        agg.cells()
    });

    r.finish();
}
