//! Scenario-engine benchmarks: timeline construction, one full
//! multi-app scenario execution under TEEM, and the parallel batch
//! matrix — the wall-clock cost of the trajectory-level evaluation the
//! scenario subsystem adds.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_core::offline::build_profile_store;
use teem_core::runner::Approach;
use teem_scenario::{BatchRunner, Scenario, ScenarioRunner};
use teem_soc::Board;
use teem_workload::App;

fn main() {
    let mut r = Runner::from_args();

    r.bench("builtin_suite_construction", || {
        Scenario::builtin_suite().len()
    });

    let sc = Scenario::back_to_back("bench-b2b", &[App::Mvt, App::Gesummv, App::Syrk], 2.0, 0.9);
    let profiles = build_profile_store(&Board::odroid_xu4_ideal(), sc.apps()).expect("profiles");

    let p = profiles.clone();
    r.bench_heavy("scenario_3apps_teem", 2, move || {
        let mut runner = ScenarioRunner::with_profiles(Approach::Teem, p.clone());
        runner.run(black_box(&sc)).expect("runs")
    });

    let scenarios = vec![
        Scenario::back_to_back("m1", &[App::Mvt, App::Syrk], 2.0, 0.9),
        Scenario::periodic("m2", App::Gesummv, 40.0, 2, 0.9),
    ];
    r.bench_heavy("batch_matrix_2x4", 1, move || {
        BatchRunner::new()
            .run_matrix(black_box(&scenarios), &Approach::all())
            .expect("runs")
            .len()
    });

    r.finish();
}
