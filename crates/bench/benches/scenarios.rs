//! Scenario-engine benchmarks: timeline construction, one full
//! multi-app scenario execution under TEEM, a three-app co-run under
//! the shared contention policy (the N-app power-superposition path),
//! the parallel batch matrix, and a thresholds × ambients grid sweep
//! over the builtin suite — the thousands-of-scenario parameter-grid
//! shape the zero-allocation hot path exists for.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_core::offline::build_profile_store;
use teem_core::runner::Approach;
use teem_scenario::{BatchRunner, ContentionPolicy, Scenario, ScenarioRunner};
use teem_soc::Board;
use teem_workload::App;

/// Grid variants of the builtin suite: every scenario re-planned under
/// each default threshold and started at each ambient.
fn grid(thresholds: &[f64], ambients: &[f64]) -> Vec<Scenario> {
    let mut out = Vec::new();
    for &thr in thresholds {
        for &amb in ambients {
            for sc in Scenario::builtin_suite() {
                let name = format!("{}@thr{thr}/amb{amb}", sc.name());
                out.push(
                    sc.with_name(name)
                        .with_initial_threshold(thr)
                        .with_initial_ambient(amb),
                );
            }
        }
    }
    out
}

fn main() {
    let mut r = Runner::from_args();

    r.bench("builtin_suite_construction", || {
        Scenario::builtin_suite().len()
    });

    let sc = Scenario::back_to_back("bench-b2b", &[App::Mvt, App::Gesummv, App::Syrk], 2.0, 0.9);
    let profiles = build_profile_store(&Board::odroid_xu4_ideal(), sc.apps()).expect("profiles");

    let p = profiles.clone();
    r.bench_heavy("scenario_3apps_teem", 2, move || {
        let mut runner = ScenarioRunner::with_profiles(Approach::Teem, p.clone());
        runner.run(black_box(&sc)).expect("runs")
    });

    // Co-running: three simultaneous arrivals under the shared policy —
    // keeps the N-app aggregation path (per-domain power superposition
    // in co_run_node_powers_into, bandwidth-slowdown progress, frequency
    // arbitration) perf-exercised alongside the serial path above.
    let co = Scenario::new("bench-corun")
        .arrive(0.0, App::Mvt, 0.9)
        .arrive(0.0, App::Syrk, 0.9)
        .arrive(0.0, App::Gesummv, 0.9);
    let p = profiles.clone();
    r.bench_heavy("scenario_corun_shared_teem", 2, move || {
        let mut runner = ScenarioRunner::with_profiles(Approach::Teem, p.clone())
            .with_contention(ContentionPolicy::Shared { max_apps: 3 });
        runner.run(black_box(&co)).expect("runs")
    });

    let scenarios = vec![
        Scenario::back_to_back("m1", &[App::Mvt, App::Syrk], 2.0, 0.9),
        Scenario::periodic("m2", App::Gesummv, 40.0, 2, 0.9),
    ];
    r.bench_heavy("batch_matrix_2x4", 1, move || {
        BatchRunner::new()
            .run_matrix(black_box(&scenarios), &Approach::all())
            .expect("runs")
            .len()
    });

    // The scenario-scale shape: a thresholds × ambients parameter grid
    // over the whole builtin suite (2 × 2 × 5 = 20 cells) fanned out by
    // the batch runner under TEEM. This is the workload the per-step
    // allocation removal targets; per-cell cost is this time / 20.
    let sweep = grid(&[82.0, 85.0], &[20.0, 30.0]);
    let cells = sweep.len();
    r.bench_heavy("grid_sweep_20_scenarios_teem", 1, move || {
        let results = BatchRunner::new()
            .run_matrix(black_box(&sweep), &[Approach::Teem])
            .expect("runs");
        assert_eq!(results.len(), cells);
        results.len()
    });

    r.finish();
}
