//! The functional Polybench kernels — serial versus partitioned
//! execution across the simulated CPU/GPU worker pools (verifying the
//! partitioning machinery adds tolerable overhead).

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_workload::{execute_partitioned, execute_serial, App, ExecConfig, Partition, ProblemSize};

fn main() {
    let mut r = Runner::from_args();
    for app in [App::Covariance, App::Gemm, App::Mvt] {
        let kernel = app.instantiate(ProblemSize::Mini);
        r.bench(&format!("{}_serial_mini", app.abbrev()), || {
            execute_serial(black_box(kernel.as_ref()))
        });
        r.bench(&format!("{}_partitioned_even_mini", app.abbrev()), || {
            execute_partitioned(
                black_box(kernel.as_ref()),
                Partition::even(),
                &ExecConfig::default(),
            )
        });
    }
    r.finish();
}
