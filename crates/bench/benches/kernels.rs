//! Criterion: the functional Polybench kernels — serial versus
//! partitioned execution across the simulated CPU/GPU worker pools
//! (verifying the partitioning machinery adds tolerable overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use teem_workload::{execute_partitioned, execute_serial, App, ExecConfig, Partition, ProblemSize};

fn bench_kernels(c: &mut Criterion) {
    for app in [App::Covariance, App::Gemm, App::Mvt] {
        let kernel = app.instantiate(ProblemSize::Mini);
        c.bench_function(&format!("{}_serial_mini", app.abbrev()), |b| {
            b.iter(|| execute_serial(black_box(kernel.as_ref())))
        });
        c.bench_function(&format!("{}_partitioned_even_mini", app.abbrev()), |b| {
            b.iter(|| {
                execute_partitioned(
                    black_box(kernel.as_ref()),
                    Partition::even(),
                    &ExecConfig::default(),
                )
            })
        });
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
