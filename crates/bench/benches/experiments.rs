//! Criterion: full experiment regeneration — one sample per paper
//! artefact so `cargo bench` demonstrably reproduces every table and
//! figure (wall-clock cost of a full simulated run is the quantity
//! being measured).

use criterion::{criterion_group, criterion_main, Criterion};
use teem_bench::experiments::{fig1, fig3_fig4, fig5, memory, tables};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(10);

    g.bench_function("fig1_case_study", |b| b.iter(fig1::run));
    g.bench_function("table1_pipeline", |b| b.iter(tables::table1));
    g.bench_function("table2_pipeline", |b| b.iter(tables::table2));
    g.bench_function("fig3_scatter_matrix", |b| b.iter(fig3_fig4::fig3));
    g.bench_function("fig4_residuals", |b| b.iter(fig3_fig4::fig4));
    g.bench_function("mem_accounting", |b| b.iter(memory::run));
    g.finish();

    // The 24-run Fig. 5 suite is the heavyweight; a single timed sample
    // regenerates figures 5a/5b/5c.
    let mut g = c.benchmark_group("fig5_suite");
    g.sample_size(10);
    g.bench_function("fig5_all_24_runs", |b| b.iter(fig5::run_all));
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
