//! Full experiment regeneration — one sample per paper artefact so
//! `cargo bench` demonstrably reproduces every table and figure
//! (wall-clock cost of a full simulated run is the quantity being
//! measured), timed with a fixed low iteration count.

use teem_bench::experiments::{fig1, fig3_fig4, fig5, memory, tables};
use teem_bench::microbench::Runner;

fn main() {
    let mut r = Runner::from_args();

    r.bench_heavy("fig1_case_study", 2, fig1::run);
    r.bench_heavy("table1_pipeline", 2, tables::table1);
    r.bench_heavy("table2_pipeline", 2, tables::table2);
    r.bench_heavy("fig3_scatter_matrix", 2, fig3_fig4::fig3);
    r.bench_heavy("fig4_residuals", 2, fig3_fig4::fig4);
    r.bench_heavy("mem_accounting", 2, memory::run);

    // The 24-run Fig. 5 suite is the heavyweight; a single timed sample
    // per batch regenerates figures 5a/5b/5c.
    r.bench_heavy("fig5_all_24_runs", 1, fig5::run_all);

    r.finish();
}
