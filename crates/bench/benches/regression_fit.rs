//! Criterion: the offline regression machinery — Table I / Table II fit
//! latency on the 17-observation set, and raw OLS throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use teem_core::offline::{fit_full_model, fit_transformed_model, regression_observations};
use teem_linreg::Dataset;
use teem_soc::Board;

fn bench_fits(c: &mut Criterion) {
    let board = Board::odroid_xu4_ideal();
    let obs = regression_observations(&board);

    c.bench_function("table1_full_model_fit", |b| {
        b.iter(|| fit_full_model(black_box(&obs)).expect("fits"))
    });

    c.bench_function("table2_transformed_fit", |b| {
        b.iter(|| fit_transformed_model(black_box(&obs)).expect("fits"))
    });

    c.bench_function("observation_collection_17pts", |b| {
        b.iter(|| regression_observations(black_box(&board)))
    });

    // Raw OLS scaling: 100-observation synthetic fit.
    c.bench_function("ols_fit_n100_p4", |b| {
        b.iter_batched(
            || {
                let mut d = Dataset::new("y");
                for j in 0..4 {
                    d.push_predictor(
                        format!("x{j}"),
                        (0..100).map(|i| ((i * (j + 2)) % 17) as f64).collect(),
                    );
                }
                d.set_response((0..100).map(|i| (i % 23) as f64).collect());
                d
            },
            |d| d.fit().expect("fits"),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_fits);
criterion_main!(benches);
