//! The offline regression machinery — Table I / Table II fit latency on
//! the 17-observation set, and raw OLS throughput.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_core::offline::{fit_full_model, fit_transformed_model, regression_observations};
use teem_linreg::Dataset;
use teem_soc::Board;

fn main() {
    let mut r = Runner::from_args();
    let board = Board::odroid_xu4_ideal();
    let obs = regression_observations(&board);

    r.bench("table1_full_model_fit", || {
        fit_full_model(black_box(&obs)).expect("fits")
    });

    r.bench("table2_transformed_fit", || {
        fit_transformed_model(black_box(&obs)).expect("fits")
    });

    r.bench("observation_collection_17pts", || {
        regression_observations(black_box(&board))
    });

    // Raw OLS scaling: 100-observation synthetic fit (the dataset build
    // is timed with the fit; it is cheap relative to the solve).
    r.bench("ols_fit_n100_p4", || {
        let mut d = Dataset::new("y");
        for j in 0..4 {
            d.push_predictor(
                format!("x{j}"),
                (0..100).map(|i| ((i * (j + 2)) % 17) as f64).collect(),
            );
        }
        d.set_response((0..100).map(|i| (i % 23) as f64).collect());
        d.fit().expect("fits")
    });

    r.finish();
}
