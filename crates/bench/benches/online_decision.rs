//! TEEM's online path — the per-control-period decision (the code that
//! runs every 100 ms on the board, so its latency matters) and the
//! launch-time planning step.

use std::hint::black_box;
use teem_bench::microbench::Runner;
use teem_core::offline::profile_app;
use teem_core::{plan, TeemGovernor, UserRequirement};
use teem_soc::{Board, ClusterFreqs, CpuMapping, MHz, Manager, SensorBank, SocControl, SocView};
use teem_workload::{App, Partition};

fn control_view(temp_c: f64) -> SocView {
    SocView {
        time_s: 10.0,
        readings: SensorBank::ideal().read(temp_c, temp_c - 8.0),
        freqs: ClusterFreqs {
            big: MHz(1800),
            little: MHz(1400),
            gpu: MHz(600),
        },
        cpu_progress: 0.5,
        gpu_progress: 0.5,
        big_util: 1.0,
        power_w: 10.0,
        mapping: CpuMapping::new(2, 3),
        partition: Partition::even(),
    }
}

fn main() {
    let mut r = Runner::from_args();

    let mut governor = TeemGovernor::paper();
    let view = control_view(86.0);
    r.bench("teem_control_decision", || {
        let mut ctl = SocControl::default();
        governor.control(black_box(&view), &mut ctl);
        ctl
    });

    let board = Board::odroid_xu4_ideal();
    let profile = profile_app(&board, App::Covariance).expect("profiling");
    let req = UserRequirement::with_paper_threshold(30.0);
    r.bench("teem_launch_plan", || {
        plan(black_box(&profile), black_box(&req))
    });

    let store =
        teem_core::offline::build_profile_store(&board, App::paper_eight()).expect("profiles");
    r.bench("profile_store_roundtrip_8apps", || {
        let bytes = store.to_bytes();
        teem_core::ProfileStore::from_bytes(black_box(&bytes)).expect("roundtrip")
    });

    r.finish();
}
