//! Streaming sweep-engine benchmarks: the thousands-of-cell grid shape
//! the engine exists for, measured end to end and reported as **cells
//! per second** (the number that matters for design-space exploration
//! throughput).
//!
//! * `sweep_grid_500_cells_stream` — the acceptance-scale 3-axis grid:
//!   5 one-arrival scenarios × 10 thresholds × 10 ambients = 500 cells,
//!   streamed through the work-stealing executor and aggregated online
//!   (peak resident results O(workers)).
//! * `sweep_grid_500_cells_batched` — the same grid through the batched
//!   lockstep path ([`SweepSpec::batch`]): K cells per worker stepped
//!   through one SoA thermal batch, bit-identical results.
//! * `sweep_knob_grid_27_tunables` — the δ × floor × threshold TEEM
//!   knob grid of the ablation experiment, as a sweep axis.
//! * `thermal_step_scalar_10ms` / `thermal_step_batched_16lane_10ms` —
//!   the integration kernel alone, scalar vs SoA, so the per-lane cost
//!   of one thermal step is pinned next to the end-to-end figures.
//! * `thermal_step_{scalar,batched}_n{16,32,48,64}` — the same kernel
//!   pair on generated many-node boards ([`BoardSpec::ManyNode`]),
//!   pinning how the per-lane SoA advantage scales with network size.
//!
//! Besides the console table, the run writes **`BENCH_sweep.json`** to
//! the working directory: scalar and batched cells/s, their ratio, the
//! thermal-step nanoseconds, the per-sample shared-cost attribution
//! (scalar-unstaged vs batched-staged, from the `engine.sample_ns` /
//! `engine.trace_ns` step-loop laps), the node-count scaling rows, and
//! the lane-occupancy/utilization gauges from untimed instrumented
//! runs — the artifact CI checks for shape and the README's
//! performance table quotes.

use std::cell::Cell;
use std::hint::black_box;
use teem_bench::experiments::ablation;
use teem_bench::microbench::Runner;
use teem_core::runner::Approach;
use teem_scenario::{Scenario, SweepEvent, SweepRunStats, SweepSpec};
use teem_soc::{BatchScratch, Board, BoardSpec, ThermalBatch};
use teem_telemetry::SweepAggregator;
use teem_workload::App;

/// Lockstep lane count for the batched benches: two full SIMD vectors.
const BATCH_K: usize = 16;

fn one_arrival_suite() -> Vec<Scenario> {
    vec![
        Scenario::new("g-mvt").arrive(0.0, App::Mvt, 0.9),
        Scenario::new("g-gesummv").arrive(0.0, App::Gesummv, 0.9),
        Scenario::new("g-syrk").arrive(0.0, App::Syrk, 0.9),
        Scenario::new("g-covariance").arrive(0.0, App::Covariance, 0.9),
        Scenario::new("g-mvt-tight").arrive(0.0, App::Mvt, 0.7),
    ]
}

/// Streams `spec`, aggregating online; returns the run stats (whose
/// `cells_per_sec` is the canonical throughput figure).
fn stream(spec: &SweepSpec) -> SweepRunStats {
    let mut agg = SweepAggregator::new();
    let stats = spec
        .run_streaming(|ev| {
            if let SweepEvent::CellDone { result, .. } = ev {
                agg.record(&result.summary);
            }
        })
        .expect("sweep runs");
    assert_eq!(stats.failed, 0);
    assert_eq!(agg.cells(), stats.cells);
    stats
}

fn main() {
    let mut r = Runner::from_args();
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke")
        || std::env::var("TEEM_BENCH_SMOKE").is_ok_and(|v| v == "1");

    let thresholds: Vec<f64> = (0..10).map(|i| 80.0 + f64::from(i)).collect();
    let ambients: Vec<f64> = (0..10).map(|i| 15.0 + 2.0 * f64::from(i)).collect();
    let grid = SweepSpec::over(one_arrival_suite())
        .approaches(&[Approach::Teem])
        .thresholds_c(&thresholds)
        .ambients_c(&ambients);
    assert_eq!(grid.cells(), 500);
    let batched_grid = grid.clone().batch(BATCH_K);

    // Cells-per-second throughput is taken from `SweepRunStats`
    // (`cells_per_sec` — the same figure every example and `repro`
    // report), best run per benchmark.
    let grid_rate = Cell::new(0.0_f64);
    r.bench_heavy("sweep_grid_500_cells_stream", 1, || {
        let stats = stream(black_box(&grid));
        grid_rate.set(grid_rate.get().max(stats.cells_per_sec()));
        stats.cells
    });

    let batched_rate = Cell::new(0.0_f64);
    r.bench_heavy("sweep_grid_500_cells_batched", 1, || {
        let stats = stream(black_box(&batched_grid));
        batched_rate.set(batched_rate.get().max(stats.cells_per_sec()));
        stats.cells
    });

    // The ablation experiment's canonical knob grid and case scenario.
    let knob_grid = SweepSpec::over([ablation::case_scenario()])
        .approaches(&[Approach::Teem])
        .tunables(&ablation::knob_grid());
    let knob_rate = Cell::new(0.0_f64);
    r.bench_heavy("sweep_knob_grid_27_tunables", 1, || {
        let stats = stream(black_box(&knob_grid));
        knob_rate.set(knob_rate.get().max(stats.cells_per_sec()));
        stats.cells
    });

    // The thermal kernel alone, scalar vs SoA — the physics inner loop
    // whose amortisation the batched grid figure rides on.
    let board = Board::odroid_xu4_ideal();
    let powers = [6.0, 0.6, 2.6, 2.2];
    let mut model = board.thermal.clone();
    r.bench("thermal_step_scalar_10ms", || {
        model.step(black_box(0.01), black_box(&powers))
    });
    let mut batch = ThermalBatch::like(&board.thermal, BATCH_K);
    for lane in 0..BATCH_K {
        batch.load_lane(lane, &board.thermal);
    }
    let mut scratch = BatchScratch::for_batch(&batch);
    for (node, p) in powers.iter().enumerate() {
        for lane in 0..BATCH_K {
            scratch.power[node * batch.stride() + lane] = *p;
        }
    }
    r.bench("thermal_step_batched_16lane_10ms", || {
        batch.step(black_box(0.01), black_box(&scratch.power))
    });

    // The same kernel pair on generated many-node networks: the
    // lane-blocked SoA step amortises the conductance matrix across
    // lanes, so its per-lane advantage should *grow* with node count.
    let node_counts = [16u32, 32, 48, 64];
    for &nodes in &node_counts {
        let nboard = BoardSpec::ManyNode { nodes }.build_ideal();
        let n = nodes as usize;
        let mut npowers = vec![0.2_f64; n];
        npowers[..4].copy_from_slice(&powers);
        let mut nmodel = nboard.thermal.clone();
        r.bench(&format!("thermal_step_scalar_n{nodes}"), || {
            nmodel.step(black_box(0.01), black_box(&npowers))
        });
        let mut nbatch = ThermalBatch::like(&nboard.thermal, BATCH_K);
        for lane in 0..BATCH_K {
            nbatch.load_lane(lane, &nboard.thermal);
        }
        let mut nscratch = BatchScratch::for_batch(&nbatch);
        for (node, p) in npowers.iter().enumerate() {
            for lane in 0..BATCH_K {
                nscratch.power[node * nbatch.stride() + lane] = *p;
            }
        }
        r.bench(&format!("thermal_step_batched_n{nodes}"), || {
            nbatch.step(black_box(0.01), black_box(&nscratch.power))
        });
    }

    // Lane occupancy and the per-sample shared-cost attribution, from
    // untimed instrumented runs — observability must not sit inside
    // the timed figures. The staged figure comes from the batched
    // default-staging grid (the fast path: one SoA sensor sweep plus a
    // sample-major row per lane); the scalar figure re-runs the grid
    // unbatched with staging off (the pre-optimisation layout: a board
    // round-trip and nine scattered appends per sample).
    let count_samples = |ev: SweepEvent, samples: &Cell<u64>| {
        if let SweepEvent::CellDone { result, .. } = ev {
            let n = result.trace.channel("ambient").map_or(0, |c| c.len());
            samples.set(samples.get() + n as u64);
        }
    };
    let staged_samples = Cell::new(0_u64);
    let (_, report) = batched_grid
        .run_instrumented(|ev| count_samples(ev, &staged_samples))
        .expect("instrumented batched sweep runs");
    let snap = report.snapshot();
    let occupancy = snap.gauge("batch.lane_occupancy").unwrap_or(0.0);
    let utilization = snap.gauge("batch.lane_utilization").unwrap_or(0.0);
    let sample_trace_ns = |snap: &teem_telemetry::MetricsSnapshot| {
        snap.counter("engine.sample_ns").unwrap_or(0) + snap.counter("engine.trace_ns").unwrap_or(0)
    };
    let per_sample_staged = sample_trace_ns(&snap) as f64 / staged_samples.get().max(1) as f64;

    let scalar_samples = Cell::new(0_u64);
    let (_, scalar_report) = grid
        .clone()
        .sample_staging(false)
        .run_instrumented(|ev| count_samples(ev, &scalar_samples))
        .expect("instrumented scalar sweep runs");
    let per_sample_scalar =
        sample_trace_ns(&scalar_report.snapshot()) as f64 / scalar_samples.get().max(1) as f64;

    println!("{}", report.kernel_split());
    for c in [
        "engine.steps",
        "engine.batched_steps",
        "batch.lanes_entered",
        "batch.rounds",
    ] {
        println!("{c:<44} {:>12}", snap.counter(c).unwrap_or(0));
    }

    let best_ns = |name: &str| {
        r.results()
            .iter()
            .find(|b| b.name == name)
            .map_or(0.0, |b| b.best_ns)
    };
    let scalar_step_ns = best_ns("thermal_step_scalar_10ms");
    let batched_lane_ns = best_ns("thermal_step_batched_16lane_10ms") / BATCH_K as f64;
    let speedup = if grid_rate.get() > 0.0 {
        batched_rate.get() / grid_rate.get()
    } else {
        0.0
    };
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };

    // Node-count scaling rows: per-lane speedup of the lane-blocked
    // kernel over the scalar step, per topology. `many_node_speedup`
    // is the 32-node row — the acceptance figure.
    let node_rows: Vec<(u32, f64, f64, f64)> = node_counts
        .iter()
        .map(|&nodes| {
            let s = best_ns(&format!("thermal_step_scalar_n{nodes}"));
            let b = best_ns(&format!("thermal_step_batched_n{nodes}")) / BATCH_K as f64;
            (nodes, s, b, ratio(s, b))
        })
        .collect();
    let many_node_speedup = node_rows.iter().find(|r| r.0 == 32).map_or(0.0, |r| r.3);
    let sample_cost_reduction = ratio(per_sample_scalar, per_sample_staged);

    for (name, rate) in [
        ("sweep_grid_500_cells_stream", &grid_rate),
        ("sweep_grid_500_cells_batched", &batched_rate),
        ("sweep_knob_grid_27_tunables", &knob_rate),
    ] {
        if r.results().iter().any(|b| b.name == name) {
            println!("{name:<44} {:>10.1} cells/s", rate.get());
        }
    }
    if batched_rate.get() > 0.0 && grid_rate.get() > 0.0 {
        println!(
            "{:<44} {speedup:>10.2} x  (occupancy {occupancy:.3}, utilization {utilization:.3})",
            "batched_vs_scalar_speedup"
        );
    }
    println!(
        "{:<44} {per_sample_scalar:>10.1} ns -> {per_sample_staged:.1} ns  ({sample_cost_reduction:.2} x)",
        "per_sample_shared_cost"
    );
    for &(nodes, s, b, sp) in &node_rows {
        println!(
            "{:<44} {s:>10.1} ns scalar, {b:.1} ns/lane batched  ({sp:.2} x)",
            format!("thermal_step_n{nodes}")
        );
    }

    let node_rows_json = node_rows
        .iter()
        .map(|&(nodes, s, b, sp)| {
            format!(
                "    {{ \"nodes\": {nodes}, \"scalar_ns\": {s:.1}, \
                 \"batched_ns_per_lane\": {b:.1}, \"per_lane_speedup\": {sp:.2} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sweep_grid\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"batch_lanes\": {lanes},\n",
            "  \"scalar_cells_per_sec\": {scalar:.1},\n",
            "  \"batched_cells_per_sec\": {batched:.1},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"thermal_step_scalar_ns\": {step_ns:.1},\n",
            "  \"thermal_step_batched_ns_per_lane\": {lane_ns:.1},\n",
            "  \"per_sample_ns_scalar\": {ps_scalar:.1},\n",
            "  \"per_sample_ns_staged\": {ps_staged:.1},\n",
            "  \"sample_cost_reduction\": {ps_ratio:.3},\n",
            "  \"many_node_speedup\": {mn_speedup:.3},\n",
            "  \"node_scaling\": [\n",
            "{node_rows}\n",
            "  ],\n",
            "  \"lane_occupancy\": {occ:.4},\n",
            "  \"lane_utilization\": {util:.4}\n",
            "}}\n"
        ),
        smoke = smoke,
        lanes = BATCH_K,
        scalar = grid_rate.get(),
        batched = batched_rate.get(),
        speedup = speedup,
        step_ns = scalar_step_ns,
        lane_ns = batched_lane_ns,
        ps_scalar = per_sample_scalar,
        ps_staged = per_sample_staged,
        ps_ratio = sample_cost_reduction,
        mn_speedup = many_node_speedup,
        node_rows = node_rows_json,
        occ = occupancy,
        util = utilization,
    );
    // Cargo runs bench binaries with the package as working directory;
    // anchor the artifact at the workspace root where CI looks for it.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    println!("wrote {}", out.display());

    r.finish();
}
