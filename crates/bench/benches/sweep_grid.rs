//! Streaming sweep-engine benchmarks: the thousands-of-cell grid shape
//! the engine exists for, measured end to end and reported as **cells
//! per second** (the number that matters for design-space exploration
//! throughput).
//!
//! * `sweep_grid_500_cells_stream` — the acceptance-scale 3-axis grid:
//!   5 one-arrival scenarios × 10 thresholds × 10 ambients = 500 cells,
//!   streamed through the work-stealing executor and aggregated online
//!   (peak resident results O(workers)).
//! * `sweep_knob_grid_27_tunables` — the δ × floor × threshold TEEM
//!   knob grid of the ablation experiment, as a sweep axis.

use std::hint::black_box;
use teem_bench::experiments::ablation;
use teem_bench::microbench::Runner;
use teem_core::runner::Approach;
use teem_scenario::{Scenario, SweepEvent, SweepSpec};
use teem_telemetry::SweepAggregator;
use teem_workload::App;

fn one_arrival_suite() -> Vec<Scenario> {
    vec![
        Scenario::new("g-mvt").arrive(0.0, App::Mvt, 0.9),
        Scenario::new("g-gesummv").arrive(0.0, App::Gesummv, 0.9),
        Scenario::new("g-syrk").arrive(0.0, App::Syrk, 0.9),
        Scenario::new("g-covariance").arrive(0.0, App::Covariance, 0.9),
        Scenario::new("g-mvt-tight").arrive(0.0, App::Mvt, 0.7),
    ]
}

/// Streams `spec`, aggregating online; returns the cell count as the
/// benchmark's observable result.
fn stream(spec: &SweepSpec) -> usize {
    let mut agg = SweepAggregator::new();
    let stats = spec
        .run_streaming(|ev| {
            if let SweepEvent::CellDone { result, .. } = ev {
                agg.record(&result.summary);
            }
        })
        .expect("sweep runs");
    assert_eq!(stats.failed, 0);
    assert_eq!(agg.cells(), stats.cells);
    agg.cells()
}

fn main() {
    let mut r = Runner::from_args();

    let thresholds: Vec<f64> = (0..10).map(|i| 80.0 + f64::from(i)).collect();
    let ambients: Vec<f64> = (0..10).map(|i| 15.0 + 2.0 * f64::from(i)).collect();
    let grid = SweepSpec::over(one_arrival_suite())
        .approaches(&[Approach::Teem])
        .thresholds_c(&thresholds)
        .ambients_c(&ambients);
    let grid_cells = grid.cells();
    assert_eq!(grid_cells, 500);
    r.bench_heavy("sweep_grid_500_cells_stream", 1, move || {
        stream(black_box(&grid))
    });

    // The ablation experiment's canonical knob grid and case scenario.
    let knob_grid = SweepSpec::over([ablation::case_scenario()])
        .approaches(&[Approach::Teem])
        .tunables(&ablation::knob_grid());
    let knob_cells = knob_grid.cells();
    r.bench_heavy("sweep_knob_grid_27_tunables", 1, move || {
        stream(black_box(&knob_grid))
    });

    // Cells-per-second throughput, derived from the best batch — the
    // DSE-facing figure of merit.
    for (name, cells) in [
        ("sweep_grid_500_cells_stream", grid_cells),
        ("sweep_knob_grid_27_tunables", knob_cells),
    ] {
        if let Some(res) = r.results().iter().find(|b| b.name == name) {
            println!(
                "{name:<44} {:>10.1} cells/s",
                cells as f64 * 1e9 / res.best_ns
            );
        }
    }

    r.finish();
}
