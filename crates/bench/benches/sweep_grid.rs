//! Streaming sweep-engine benchmarks: the thousands-of-cell grid shape
//! the engine exists for, measured end to end and reported as **cells
//! per second** (the number that matters for design-space exploration
//! throughput).
//!
//! * `sweep_grid_500_cells_stream` — the acceptance-scale 3-axis grid:
//!   5 one-arrival scenarios × 10 thresholds × 10 ambients = 500 cells,
//!   streamed through the work-stealing executor and aggregated online
//!   (peak resident results O(workers)).
//! * `sweep_knob_grid_27_tunables` — the δ × floor × threshold TEEM
//!   knob grid of the ablation experiment, as a sweep axis.

use std::cell::Cell;
use std::hint::black_box;
use teem_bench::experiments::ablation;
use teem_bench::microbench::Runner;
use teem_core::runner::Approach;
use teem_scenario::{Scenario, SweepEvent, SweepRunStats, SweepSpec};
use teem_telemetry::SweepAggregator;
use teem_workload::App;

fn one_arrival_suite() -> Vec<Scenario> {
    vec![
        Scenario::new("g-mvt").arrive(0.0, App::Mvt, 0.9),
        Scenario::new("g-gesummv").arrive(0.0, App::Gesummv, 0.9),
        Scenario::new("g-syrk").arrive(0.0, App::Syrk, 0.9),
        Scenario::new("g-covariance").arrive(0.0, App::Covariance, 0.9),
        Scenario::new("g-mvt-tight").arrive(0.0, App::Mvt, 0.7),
    ]
}

/// Streams `spec`, aggregating online; returns the run stats (whose
/// `cells_per_sec` is the canonical throughput figure).
fn stream(spec: &SweepSpec) -> SweepRunStats {
    let mut agg = SweepAggregator::new();
    let stats = spec
        .run_streaming(|ev| {
            if let SweepEvent::CellDone { result, .. } = ev {
                agg.record(&result.summary);
            }
        })
        .expect("sweep runs");
    assert_eq!(stats.failed, 0);
    assert_eq!(agg.cells(), stats.cells);
    stats
}

fn main() {
    let mut r = Runner::from_args();

    let thresholds: Vec<f64> = (0..10).map(|i| 80.0 + f64::from(i)).collect();
    let ambients: Vec<f64> = (0..10).map(|i| 15.0 + 2.0 * f64::from(i)).collect();
    let grid = SweepSpec::over(one_arrival_suite())
        .approaches(&[Approach::Teem])
        .thresholds_c(&thresholds)
        .ambients_c(&ambients);
    assert_eq!(grid.cells(), 500);

    // Cells-per-second throughput is taken from `SweepRunStats`
    // (`cells_per_sec` — the same figure every example and `repro`
    // report), best run per benchmark.
    let grid_rate = Cell::new(0.0_f64);
    r.bench_heavy("sweep_grid_500_cells_stream", 1, || {
        let stats = stream(black_box(&grid));
        grid_rate.set(grid_rate.get().max(stats.cells_per_sec()));
        stats.cells
    });

    // The ablation experiment's canonical knob grid and case scenario.
    let knob_grid = SweepSpec::over([ablation::case_scenario()])
        .approaches(&[Approach::Teem])
        .tunables(&ablation::knob_grid());
    let knob_rate = Cell::new(0.0_f64);
    r.bench_heavy("sweep_knob_grid_27_tunables", 1, || {
        let stats = stream(black_box(&knob_grid));
        knob_rate.set(knob_rate.get().max(stats.cells_per_sec()));
        stats.cells
    });

    for (name, rate) in [
        ("sweep_grid_500_cells_stream", &grid_rate),
        ("sweep_knob_grid_27_tunables", &knob_rate),
    ] {
        if r.results().iter().any(|b| b.name == name) {
            println!("{name:<44} {:>10.1} cells/s", rate.get());
        }
    }

    r.finish();
}
