//! End-to-end distributed campaign acceptance: a real multi-process
//! campaign driven through the `teem-coordinator` binary — including
//! one worker dying mid-shard — merges to a journal digest-identical
//! to the uninterrupted single-process run.
//!
//! This is the process-boundary complement of
//! `crates/scenario/tests/shard_invariants.rs` (same algebra, pinned
//! in-process) and the local twin of the CI `distributed-campaign`
//! job, which runs the same assertions in release mode on the 500-cell
//! acceptance grid. Here the 60-cell `small` grid keeps debug-mode
//! wall time comparable to the existing 500-cell resume test.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The coordinator binary under test (built by cargo for this crate).
fn coordinator() -> Command {
    Command::new(env!("CARGO_BIN_EXE_teem-coordinator"))
}

/// A per-test campaign directory, removed on drop.
struct CampaignDir(PathBuf);

impl CampaignDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("teem_campaign_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("campaign dir");
        CampaignDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for CampaignDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_ok(cmd: &mut Command) -> String {
    let Output {
        status,
        stdout,
        stderr,
    } = cmd.output().expect("spawns");
    let stdout = String::from_utf8_lossy(&stdout).to_string();
    let stderr = String::from_utf8_lossy(&stderr).to_string();
    assert!(
        status.success(),
        "command failed ({status:?})\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    stdout
}

/// Pulls the `merged digest <16 hex>` line out of coordinator output.
fn digest_of(output: &str) -> String {
    output
        .lines()
        .find_map(|l| l.strip_prefix("merged digest "))
        .unwrap_or_else(|| panic!("no digest line in:\n{output}"))
        .to_string()
}

/// A clean 3-process campaign is digest-identical to the
/// single-process run, and its merged journal file loads as an
/// ordinary complete journal.
#[test]
fn three_process_campaign_matches_single_process_digest() {
    let dir = CampaignDir::new("clean");
    let merged_path = dir.path().join("merged.jsonl");

    let single = run_ok(coordinator().args(["single", "--grid", "small"]));
    let campaign = run_ok(coordinator().args([
        "run",
        "--grid",
        "small",
        "--workers",
        "3",
        "--dir",
        dir.path().to_str().expect("utf-8 tmp"),
        "--merged",
        merged_path.to_str().expect("utf-8 tmp"),
        "--verify",
    ]));
    assert_eq!(
        digest_of(&single),
        digest_of(&campaign),
        "single:\n{single}\ncampaign:\n{campaign}"
    );
    assert!(campaign.contains("verified"), "{campaign}");
    assert!(campaign.contains("(0 deaths"), "{campaign}");

    // The merged journal is an ordinary journal: the offline merge of
    // the shard journals reproduces the same digest from the files
    // alone.
    let shards: Vec<String> = (0..3)
        .map(|i| {
            dir.path()
                .join(format!("shard_{i:03}.jsonl"))
                .to_str()
                .expect("utf-8 tmp")
                .to_string()
        })
        .collect();
    let offline = run_ok(coordinator().arg("merge").args(&shards));
    assert_eq!(digest_of(&offline), digest_of(&single), "{offline}");
}

/// The acceptance headline: worker 1 dies (durable abort) after 3
/// cells; the coordinator re-shards its remaining cells onto the
/// survivors; the merged result is still digest-identical to the
/// uninterrupted single-process run.
#[test]
fn campaign_with_a_worker_killed_mid_shard_still_matches_single_process_digest() {
    let dir = CampaignDir::new("killed");

    let single = run_ok(coordinator().args(["single", "--grid", "small"]));
    let campaign = run_ok(coordinator().args([
        "run",
        "--grid",
        "small",
        "--workers",
        "3",
        "--dir",
        dir.path().to_str().expect("utf-8 tmp"),
        "--kill",
        "1@3",
        "--verify",
    ]));
    assert_eq!(
        digest_of(&single),
        digest_of(&campaign),
        "single:\n{single}\ncampaign:\n{campaign}"
    );
    assert!(campaign.contains("verified"), "{campaign}");
    assert!(campaign.contains("1 deaths"), "{campaign}");

    // The dead worker left a journal with exactly the 3 durable records
    // it synced before aborting — those cells were *not* re-run (the
    // merge would reject the overlap otherwise), just merged in.
    let dead = std::fs::read_to_string(dir.path().join("shard_001.jsonl")).expect("dead journal");
    let done_lines = dead
        .lines()
        .filter(|l| l.starts_with("{\"kind\":\"done\""))
        .count();
    assert_eq!(done_lines, 3, "exactly the durable records at death");
    assert!(
        !dir.path().join("shard_001.jsonl.metrics.json").exists(),
        "a dead worker writes no metrics sidecar"
    );
}
