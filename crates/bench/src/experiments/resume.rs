//! Crash-safe sweep resume, smoke-sized: the `repro resume` artefact.
//!
//! The full-size story (500 cells, interrupted at 200) lives in the
//! `sweep_resume` example and the `journal_invariants` acceptance
//! test; this experiment runs the same machinery on a small knob grid
//! so `repro resume` finishes in well under a second and prints the
//! accounting a reviewer needs to trust a resumed campaign:
//!
//! * how many cells the interrupted run journalled,
//! * how many the resume skipped vs executed (no re-execution),
//! * the order-invariant journal digest of the merged run vs an
//!   uninterrupted reference, and
//! * the cell-by-cell diff (empty ⇔ identical).

use std::fmt::Write as _;

use teem_core::runner::Approach;
use teem_scenario::{
    journal_digest, run_interrupted, ConfigPatch, LoadedJournal, Scenario, SweepEvent,
    SweepJournal, SweepSpec,
};
use teem_telemetry::{sweep_diff, CellRecord, SweepAggregator};
use teem_workload::App;

/// What the demo measured.
#[derive(Debug, Clone)]
pub struct ResumeDemo {
    /// Grid size.
    pub cells: usize,
    /// Cells journalled before the injected crash.
    pub interrupted_at: usize,
    /// Cells the resumed run skipped (== `interrupted_at`).
    pub skipped: usize,
    /// Cells the resumed run executed.
    pub executed: usize,
    /// Resumed-run throughput from
    /// [`SweepRunStats::cells_per_sec`](teem_scenario::SweepRunStats::cells_per_sec).
    pub cells_per_sec: f64,
    /// Order-invariant digest of the merged journal.
    pub merged_digest: u64,
    /// Digest of the uninterrupted reference run.
    pub reference_digest: u64,
    /// `true` when the cell-by-cell diff is empty.
    pub diff_empty: bool,
    /// The replayed aggregate report.
    pub report: String,
}

/// The smoke grid: 2 scenarios × 3 thresholds × 2 approaches = 12
/// cells, each capped at 2 s of simulated time.
fn smoke_spec() -> SweepSpec {
    SweepSpec::over([
        Scenario::new("mvt").arrive(0.0, App::Mvt, 0.9),
        Scenario::new("syrk").arrive(0.0, App::Syrk, 0.85),
    ])
    .approaches(&[Approach::Teem, Approach::Ondemand])
    .thresholds_c(&[80.0, 85.0, 90.0])
    .patch_config(ConfigPatch {
        timeout_s: Some(2.0),
        ..ConfigPatch::default()
    })
    .threads(2)
}

/// Runs the interrupt → resume → verify pipeline on the smoke grid.
///
/// # Panics
///
/// Panics on journal I/O failure or if the resumed union is not
/// identical to the uninterrupted run — this artefact *is* the check.
pub fn run() -> ResumeDemo {
    let path = std::env::temp_dir().join(format!("teem_repro_resume_{}.jsonl", std::process::id()));
    let spec = smoke_spec();
    let interrupt_after = spec.cells() / 2;

    // Interrupted run: the sink journals each cell, then kills the
    // pool after `interrupt_after` of them (panic = pool cancellation).
    // `run_interrupted` silences the injected crash by *payload*, not
    // by muting the process-global hook wholesale — other threads (e.g.
    // concurrently running tests) keep their panic reporting.
    let mut journal = SweepJournal::create(&path, &spec).expect("create journal");
    run_interrupted(&spec, &mut journal, interrupt_after);
    drop(journal);

    // Resume from the journal; only the remainder executes.
    let loaded = LoadedJournal::load(&path).expect("journal loads");
    let resumed = spec.clone().resume_from(&loaded).expect("same grid");
    let mut journal = SweepJournal::append_to(&path, &spec).expect("append");
    let stats = resumed
        .run_streaming(|ev| journal.observe(&ev).expect("journal write"))
        .expect("resumed sweep runs");
    drop(journal);

    // Verify against an uninterrupted run.
    let merged = LoadedJournal::load(&path).expect("merged journal loads");
    let mut reference: Vec<CellRecord> = Vec::new();
    spec.run_streaming(|ev| {
        if let SweepEvent::CellDone { cell, result } = ev {
            reference.push(CellRecord::from_summary(
                cell.index,
                &result.summary,
                result.trace.digest(),
            ));
        }
    })
    .expect("reference sweep runs");
    let diff = sweep_diff(&reference, &merged.records);
    let demo = ResumeDemo {
        cells: spec.cells(),
        interrupted_at: loaded.records.len(),
        skipped: stats.skipped,
        executed: stats.cells,
        cells_per_sec: stats.cells_per_sec(),
        merged_digest: journal_digest(&merged.records),
        reference_digest: journal_digest(&reference),
        diff_empty: diff.is_empty(),
        report: SweepAggregator::replay(merged.records.iter()).report(),
    };
    let _ = std::fs::remove_file(&path);
    assert_eq!(demo.merged_digest, demo.reference_digest);
    assert!(demo.diff_empty, "diff:\n{}", diff.report());
    demo
}

/// Formats the demo as the `repro resume` report.
pub fn report(d: &ResumeDemo) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== sweep resume (persisted journal) ==");
    let _ = writeln!(
        out,
        "{} cells; crashed after {}; resume skipped {} and executed {} ({:.0} cells/s)",
        d.cells, d.interrupted_at, d.skipped, d.executed, d.cells_per_sec
    );
    let _ = writeln!(
        out,
        "merged journal digest {:016x} == uninterrupted {:016x}; diff empty: {}",
        d.merged_digest, d.reference_digest, d.diff_empty
    );
    let _ = write!(out, "{}", d.report);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_demo_round_trips_and_reports() {
        let d = run();
        assert_eq!(d.cells, 12);
        assert_eq!(d.skipped, d.interrupted_at);
        assert_eq!(d.executed, d.cells - d.skipped);
        assert_eq!(d.merged_digest, d.reference_digest);
        assert!(d.diff_empty);
        let r = report(&d);
        assert!(r.contains("diff empty: true"), "{r}");
        assert!(r.contains("12 cells"), "{r}");
    }
}
