//! Experiment `mem`: the §V-D memory-optimisation accounting — EEMP's
//! 128 stored design points per application versus TEEM's 2 items, with
//! concrete artefacts built for every paper application.

use teem_core::baselines::Eemp;
use teem_core::memory::MemoryComparison;
use teem_core::offline::profile_app;
use teem_soc::Board;
use teem_workload::App;

/// Per-application accounting plus the paper-level summary.
#[derive(Debug)]
pub struct MemoryReport {
    /// One comparison per application (all identical sizes by design).
    pub per_app: Vec<(App, MemoryComparison)>,
    /// The paper-level comparison.
    pub paper: MemoryComparison,
}

/// Builds the artefacts (real LUTs and profiles) and accounts for them.
pub fn run() -> MemoryReport {
    let board = Board::odroid_xu4_ideal();
    let per_app = App::paper_eight()
        .into_iter()
        .map(|app| {
            let lut = Eemp::build(&board, app);
            let profile = profile_app(&board, app).expect("profiling");
            (app, MemoryComparison::from_artifacts(lut.lut(), &profile))
        })
        .collect();
    MemoryReport {
        per_app,
        paper: MemoryComparison::paper(),
    }
}

/// Prints the report.
pub fn report(m: &MemoryReport) -> String {
    let mut out = String::from("== mem: per-application storage (section V-D) ==\n");
    for (app, c) in &m.per_app {
        out.push_str(&format!("  {app}: {c}\n"));
    }
    out.push_str(&format!(
        "overall: {:.1}% byte saving, {:.1}% item saving\n",
        m.paper.byte_saving_pct(),
        m.paper.item_saving_pct()
    ));
    out.push_str("[paper: 2 items vs 128 items -> 98.8% saving; abstract: >90%]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_saves_more_than_98_percent() {
        let m = run();
        assert_eq!(m.per_app.len(), 8);
        for (app, c) in &m.per_app {
            assert_eq!(c.eemp_items, 128, "{app}");
            assert!(c.byte_saving_pct() > 98.0, "{app}: {}", c.byte_saving_pct());
        }
        assert!(report(&m).contains("98"));
    }
}
