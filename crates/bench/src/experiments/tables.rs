//! Experiments `table1` and `table2`: the offline regression pipeline —
//! the full eq. (5) model with its collinearity diagnosis (Table I) and
//! the reduced log-transformed eq. (6) model (Table II), printed as
//! R-style summaries against the paper's reported statistics.

use teem_core::offline::{
    fit_full_model, fit_transformed_model, regression_observations, TransformedFit,
};
use teem_linreg::summary::Summary;
use teem_linreg::OlsFit;
use teem_soc::Board;

/// Paper statistics quoted from Table I.
pub const PAPER_TABLE1: &str =
    "paper Table I: R2=0.8749 adjR2=0.8332 F=20.98 on 4 and 12 DF (p=2.396e-05), sigma=0.4802";

/// Paper statistics quoted from Table II.
pub const PAPER_TABLE2: &str =
    "paper Table II: R2=0.9219 adjR2=0.9019 F=76.71 on 2 and 13 DF (p=6.348e-08), sigma=0.1614";

/// Runs the Table I fit on the regression observation set.
pub fn table1() -> OlsFit {
    let board = Board::odroid_xu4_ideal();
    let obs = regression_observations(&board);
    fit_full_model(&obs).expect("Table I model fits")
}

/// Runs the Table II pipeline (reduced + outlier drop + log transform).
pub fn table2() -> TransformedFit {
    let board = Board::odroid_xu4_ideal();
    let obs = regression_observations(&board);
    fit_transformed_model(&obs).expect("Table II model fits")
}

/// Prints the Table I report.
pub fn report_table1(fit: &OlsFit) -> String {
    format!(
        "== table1: M ~ AT + ET + PT + EC (n=17) ==\n{}\n{PAPER_TABLE1}\n",
        Summary::new(fit)
    )
}

/// Prints the Table II report.
pub fn report_table2(t: &TransformedFit) -> String {
    format!(
        "== table2: log10(M) ~ AT + ET (n=16, dropped obs #{}) ==\n{}\n{PAPER_TABLE2}\n",
        t.dropped_observation,
        Summary::new(&t.fit)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_structure() {
        let fit = table1();
        assert_eq!(fit.df_residual(), 12);
        let text = report_table1(&fit);
        assert!(text.contains("Pr(>|t|)"));
        assert!(text.contains("paper Table I"));
    }

    #[test]
    fn table2_matches_paper_statistics_shape() {
        let t = table2();
        assert_eq!(t.fit.df_residual(), 13);
        assert!(t.fit.r_squared() > 0.80, "R2 = {}", t.fit.r_squared());
        let (f, d1, d2) = t.fit.f_statistic();
        assert_eq!((d1, d2), (2, 13));
        assert!(f > 10.0, "F = {f}");
        // ET significant and negative, as in the paper.
        let et = t.fit.coefficient("ET").expect("ET term");
        assert!(et.estimate < 0.0 && et.p_value < 0.01);
        let text = report_table2(&t);
        assert!(text.contains("log10(M)"));
    }
}
