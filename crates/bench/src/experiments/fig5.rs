//! Experiments `fig5a`/`fig5b`/`fig5c`: the eight-application comparison
//! of EEMP, RMP and TEEM — energy (a), temperature (b) and execution
//! time (c) — at the fixed Fig. 5 mapping with per-application
//! requirements at the paper's 85 °C threshold.

use teem_core::offline::profile_app;
use teem_core::runner::{fig5_mapping, fig5_requirement, run, Approach};
use teem_soc::Board;
use teem_telemetry::plot::{bar_chart, BarGroup};
use teem_telemetry::stats::percent_reduction;
use teem_telemetry::RunSummary;
use teem_workload::App;

/// One application's three runs.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// The application.
    pub app: App,
    /// EEMP result.
    pub eemp: RunSummary,
    /// RMP result.
    pub rmp: RunSummary,
    /// TEEM result.
    pub teem: RunSummary,
}

/// The full Fig. 5 dataset.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One row per application, Fig. 5(a) order.
    pub rows: Vec<Fig5Row>,
}

/// Runs all 24 simulations (8 apps × 3 approaches).
pub fn run_all() -> Fig5 {
    let board = Board::odroid_xu4_ideal();
    let rows = App::paper_eight()
        .into_iter()
        .map(|app| {
            let profile = profile_app(&board, app).expect("profiling");
            let req = fig5_requirement(app, &profile);
            let mut results = Approach::fig5()
                .into_iter()
                .map(|a| run(app, a, &req, Some(&profile), Some(fig5_mapping()), None).summary);
            Fig5Row {
                app,
                eemp: results.next().expect("EEMP"),
                rmp: results.next().expect("RMP"),
                teem: results.next().expect("TEEM"),
            }
        })
        .collect();
    Fig5 { rows }
}

/// Average of a metric over the rows for one approach selector.
fn average(rows: &[Fig5Row], get: impl Fn(&Fig5Row) -> f64) -> f64 {
    rows.iter().map(&get).sum::<f64>() / rows.len() as f64
}

fn bars(rows: &[Fig5Row], get: impl Fn(&RunSummary) -> f64) -> Vec<BarGroup> {
    rows.iter()
        .map(|r| BarGroup {
            label: r.app.abbrev().to_string(),
            bars: vec![
                ("EEMP".to_string(), get(&r.eemp)),
                ("RMP".to_string(), get(&r.rmp)),
                ("TEEM".to_string(), get(&r.teem)),
            ],
        })
        .collect()
}

/// Fig. 5(a): energy consumption per application.
pub fn report_a(f: &Fig5) -> String {
    let mut out = String::from("== fig5a: energy consumption (J) ==\n");
    out.push_str(&bar_chart(&bars(&f.rows, |s| s.energy_j), 44, "J"));
    let e = average(&f.rows, |r| r.eemp.energy_j);
    let m = average(&f.rows, |r| r.rmp.energy_j);
    let t = average(&f.rows, |r| r.teem.energy_j);
    out.push_str(&format!(
        "average: EEMP {e:.0}J RMP {m:.0}J TEEM {t:.0}J -> TEEM saves {:.1}% vs EEMP, {:.1}% vs RMP\n",
        percent_reduction(e, t).unwrap_or(f64::NAN),
        percent_reduction(m, t).unwrap_or(f64::NAN)
    ));
    out.push_str("[paper: 28.32% vs EEMP, 13.97% vs RMP; overhead vs RMP on 2D (+18.81%) and GM (+30.36%)]\n");
    // The per-app crossover the paper highlights.
    for row in &f.rows {
        if matches!(row.app, App::Conv2d | App::Gemm) {
            let over = (row.teem.energy_j / row.rmp.energy_j - 1.0) * 100.0;
            out.push_str(&format!(
                "  {}: TEEM energy vs RMP {:+.1}% (RMP ran GPU-only)\n",
                row.app.abbrev(),
                over
            ));
        }
    }
    out
}

/// Fig. 5(b): temperature behaviour per application.
pub fn report_b(f: &Fig5) -> String {
    let mut out = String::from("== fig5b: peak temperature (C) and thermal variance ==\n");
    out.push_str(&bar_chart(&bars(&f.rows, |s| s.peak_temp_c), 44, "C"));
    let e = average(&f.rows, |r| r.eemp.temp_variance);
    let m = average(&f.rows, |r| r.rmp.temp_variance);
    let t = average(&f.rows, |r| r.teem.temp_variance);
    out.push_str(&format!(
        "thermal variance: EEMP {e:.2} RMP {m:.2} TEEM {t:.2} -> TEEM reduces {:.0}% vs EEMP, {:.0}% vs RMP\n",
        percent_reduction(e, t).unwrap_or(f64::NAN),
        percent_reduction(m, t).unwrap_or(f64::NAN)
    ));
    // CPU-worthy apps only (the GPU-dominated runs drift cool and
    // dominate the raw average; the paper's Fig. 5b apps all load the
    // CPU):
    let cpu_rows: Vec<Fig5Row> = f
        .rows
        .iter()
        .filter(|r| !matches!(r.app, App::Conv2d | App::Gemm))
        .cloned()
        .collect();
    let e = average(&cpu_rows, |r| r.eemp.temp_variance);
    let m = average(&cpu_rows, |r| r.rmp.temp_variance);
    let t = average(&cpu_rows, |r| r.teem.temp_variance);
    out.push_str(&format!(
        "variance (CPU-worthy apps): EEMP {e:.2} RMP {m:.2} TEEM {t:.2} -> {:.0}% / {:.0}% reduction\n",
        percent_reduction(e, t).unwrap_or(f64::NAN),
        percent_reduction(m, t).unwrap_or(f64::NAN)
    ));
    out.push_str("[paper: 76% reduction vs EEMP, 45% vs RMP; TEEM peak within the threshold]\n");
    out
}

/// Fig. 5(c): execution time per application.
pub fn report_c(f: &Fig5) -> String {
    let mut out = String::from("== fig5c: execution time (s) ==\n");
    out.push_str(&bar_chart(&bars(&f.rows, |s| s.execution_time_s), 44, "s"));
    let e = average(&f.rows, |r| r.eemp.execution_time_s);
    let m = average(&f.rows, |r| r.rmp.execution_time_s);
    let t = average(&f.rows, |r| r.teem.execution_time_s);
    out.push_str(&format!(
        "average: EEMP {e:.1}s RMP {m:.1}s TEEM {t:.1}s -> TEEM improves {:.1}% vs EEMP, {:.1}% vs RMP\n",
        percent_reduction(e, t).unwrap_or(f64::NAN),
        percent_reduction(m, t).unwrap_or(f64::NAN)
    ));
    out.push_str("[paper: ~28% vs EEMP, ~24% vs RMP]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_orderings_hold() {
        let f = run_all();
        assert_eq!(f.rows.len(), 8);
        // Averages: TEEM faster than both baselines and no worse than
        // EEMP on energy.
        let t_time = average(&f.rows, |r| r.teem.execution_time_s);
        let e_time = average(&f.rows, |r| r.eemp.execution_time_s);
        let m_time = average(&f.rows, |r| r.rmp.execution_time_s);
        assert!(t_time < e_time, "TEEM {t_time} vs EEMP {e_time}");
        assert!(t_time < m_time, "TEEM {t_time} vs RMP {m_time}");
        let t_e = average(&f.rows, |r| r.teem.energy_j);
        let e_e = average(&f.rows, |r| r.eemp.energy_j);
        assert!(t_e < e_e, "TEEM {t_e} J vs EEMP {e_e} J");
        // The 2D crossover.
        let conv = f.rows.iter().find(|r| r.app == App::Conv2d).expect("2D");
        assert!(conv.teem.energy_j > conv.rmp.energy_j);
        // Reports render.
        for text in [report_a(&f), report_b(&f), report_c(&f)] {
            assert!(text.contains("TEEM"));
            assert!(text.contains("paper"));
        }
    }
}
