//! Experiment `fig1`: the motivational case study — COVARIANCE on 2L+3B
//! at partition 1024/2048 under (a) stock ondemand + reactive 95 °C trip
//! and (b) TEEM at the 85 °C threshold.
//!
//! Paper reference values: ondemand ET 48 s / 530 J / avg 93.7 °C / peak
//! 96 °C; TEEM ET 39.6 s / 413 J / avg 85.8 °C / peak 90 °C.

use teem_core::TeemGovernor;
use teem_governors::Ondemand;
use teem_soc::{Board, ClusterFreqs, CpuMapping, MHz, RunResult, RunSpec, Simulation};
use teem_telemetry::summary::{compare, Comparison};
use teem_workload::{App, Partition};

/// The Fig. 1 run specification.
pub fn case_study_spec() -> RunSpec {
    RunSpec {
        app: App::Covariance,
        mapping: CpuMapping::new(2, 3),
        partition: Partition::even(),
        initial: ClusterFreqs {
            big: MHz(2000),
            little: MHz(1400),
            gpu: MHz(600),
        },
    }
}

/// Both Fig. 1 runs plus the derived comparison.
#[derive(Debug)]
pub struct Fig1 {
    /// (a) ondemand + reactive trip.
    pub ondemand: RunResult,
    /// (b) TEEM at 85 °C.
    pub teem: RunResult,
    /// TEEM relative to ondemand.
    pub comparison: Option<Comparison>,
}

/// Runs the experiment.
pub fn run() -> Fig1 {
    let mut sim = Simulation::new(Board::odroid_xu4(), case_study_spec());
    let ondemand = sim.run(&mut Ondemand::xu4());
    let mut sim = Simulation::new(Board::odroid_xu4(), case_study_spec());
    let teem = sim.run(&mut TeemGovernor::paper());
    let comparison = compare(&ondemand.summary, &teem.summary);
    Fig1 {
        ondemand,
        teem,
        comparison,
    }
}

/// Prints the paper-vs-measured report.
pub fn report(fig: &Fig1) -> String {
    let mut out = String::new();
    out.push_str("== fig1: motivational case study (CV, 2L+3B, partition 1024) ==\n");
    out.push_str(&format!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>6}\n",
        "approach", "ET(s)", "E(J)", "avgT(C)", "peakT(C)", "trips"
    ));
    for (r, paper) in [
        (&fig.ondemand, "paper: 48.0s 530J 93.7C 96C"),
        (&fig.teem, "paper: 39.6s 413J 85.8C 90C"),
    ] {
        out.push_str(&format!(
            "{:<10} {:>8.1} {:>8.0} {:>8.1} {:>8.1} {:>6}   [{paper}]\n",
            r.summary.approach,
            r.summary.execution_time_s,
            r.summary.energy_j,
            r.summary.avg_temp_c,
            r.summary.peak_temp_c,
            r.zone_trips,
        ));
    }
    if let Some(c) = &fig.comparison {
        out.push_str(&format!(
            "TEEM vs ondemand: {:+.1}% time, {:+.1}% energy, {:+.1}% variance, {:+.1}C peak\n",
            c.perf_improvement_pct,
            c.energy_saving_pct,
            c.variance_reduction_pct,
            c.peak_temp_delta_c
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_holds() {
        let fig = run();
        assert!(fig.ondemand.zone_trips >= 1);
        assert_eq!(fig.teem.zone_trips, 0);
        let c = fig.comparison.expect("comparable");
        assert!(c.perf_improvement_pct > 0.0, "TEEM must be faster");
        assert!(
            c.variance_reduction_pct > 65.0,
            "variance {}",
            c.variance_reduction_pct
        );
        let text = report(&fig);
        assert!(text.contains("TEEM"));
        assert!(text.contains("paper: 48.0s"));
    }
}
