//! Ablations of TEEM's design choices, as the paper discusses in prose:
//! the 85 °C threshold ("either high overheads ... or miss performance
//! improvement opportunities"), the δ = 200 MHz step, and the 1400 MHz
//! floor ("1400 MHz was used due to the observation made while
//! evaluating the effects of various frequencies").
//!
//! Rebased onto the streaming sweep engine: every sweep is a
//! [`TeemTunables`] knob axis over a scenario cell, executed by
//! [`SweepSpec`] — the same machinery that runs thousands-of-cell
//! grids — instead of a bespoke per-governor loop. This also upgrades
//! the semantics from "re-run one fixed design point" to the full
//! pipeline: a knob threshold re-plans the launch (eq. 6 inversion at
//! the new AT) *and* re-tunes the online stepper, which is how the
//! trade-off actually presents on a running system — e.g. lowering the
//! threshold grants more cores and can *heat* the die into reactive
//! trips, and a high floor loses control via trips rather than average
//! temperature.

use teem_core::runner::Approach;
use teem_core::TeemTunables;
use teem_scenario::{Scenario, SweepEvent, SweepSpec};
use teem_soc::MHz;
use teem_telemetry::{RunSummary, SweepAggregator};
use teem_workload::App;

/// One ablation point.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// The varied parameter's value.
    pub value: f64,
    /// The case-study app's run summary in that cell.
    pub summary: RunSummary,
    /// Reactive-zone trips (non-zero means the setting lost control).
    pub zone_trips: u32,
}

/// The knob case study: SYRK under a deadline tight enough that TEEM's
/// plan rides above the 85 °C threshold (≈ 87 °C average, trip-free at
/// the paper knobs) — every knob has something to steer.
pub fn case_scenario() -> Scenario {
    Scenario::new("syrk-tight").arrive(0.0, App::Syrk, 0.55)
}

/// Runs one knob axis over the case scenario through the sweep engine
/// and pairs each cell back with its swept value.
fn knob_sweep(values: &[f64], knob: impl Fn(f64) -> TeemTunables) -> Vec<AblationPoint> {
    let tunables: Vec<TeemTunables> = values.iter().map(|&v| knob(v)).collect();
    let results = SweepSpec::over([case_scenario()])
        .approaches(&[Approach::Teem])
        .tunables(&tunables)
        .run_collect()
        .expect("ablation sweep runs");
    values
        .iter()
        .zip(results)
        .map(|(&value, r)| AblationPoint {
            value,
            zone_trips: r.summary.zone_trips,
            summary: r.summary.apps[0].summary.clone(),
        })
        .collect()
}

/// Sweeps the thermal threshold (the paper explored several before
/// settling on 85 °C). The threshold flows into launch planning *and*
/// the stepper, as on the real system.
pub fn threshold_sweep(values_c: &[f64]) -> Vec<AblationPoint> {
    knob_sweep(values_c, |v| TeemTunables::paper().with_threshold(v))
}

/// Sweeps the frequency step δ.
pub fn delta_sweep(values_mhz: &[u32]) -> Vec<AblationPoint> {
    let values: Vec<f64> = values_mhz.iter().map(|&v| f64::from(v)).collect();
    knob_sweep(&values, |v| TeemTunables::paper().with_delta(v as u32))
}

/// Sweeps the frequency floor.
pub fn floor_sweep(values_mhz: &[u32]) -> Vec<AblationPoint> {
    let values: Vec<f64> = values_mhz.iter().map(|&v| f64::from(v)).collect();
    knob_sweep(&values, |v| TeemTunables::paper().with_floor(MHz(v as u32)))
}

/// Prints a sweep as a table.
pub fn report(name: &str, points: &[AblationPoint]) -> String {
    let mut out = format!("== ablation: {name} (SYRK, treq 0.55 x ET_GPU, sweep engine) ==\n");
    out.push_str(&format!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6}\n",
        "value", "ET(s)", "E(J)", "avgT(C)", "peakT(C)", "varT(C2)", "trips"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8.0} {:>8.1} {:>8.0} {:>8.1} {:>8.1} {:>9.2} {:>6}\n",
            p.value,
            p.summary.execution_time_s,
            p.summary.energy_j,
            p.summary.avg_temp_c,
            p.summary.peak_temp_c,
            p.summary.temp_variance,
            p.zone_trips
        ));
    }
    out
}

/// The canonical δ × floor × threshold knob grid (3 × 3 × 3 = 27 knob
/// sets) shared by the ablation report, the `sweep_grid` bench and the
/// `sweep_ablation` example — one definition, so they cannot silently
/// diverge.
pub fn knob_grid() -> Vec<TeemTunables> {
    let mut knobs = Vec::new();
    for &thr in &[80.0, 85.0, 90.0] {
        for &delta in &[100u32, 200, 400] {
            for &floor in &[1000u32, 1400, 1800] {
                knobs.push(
                    TeemTunables::paper()
                        .with_threshold(thr)
                        .with_delta(delta)
                        .with_floor(MHz(floor)),
                );
            }
        }
    }
    knobs
}

/// The full δ × floor × threshold knob grid streamed through the
/// engine into a [`SweepAggregator`]: per-scenario winners and the
/// energy / makespan / trips Pareto front across every knob
/// combination — the scenario-level ablation the single-axis tables
/// cannot show.
pub fn knob_grid_report() -> String {
    let knobs = knob_grid();
    let spec = SweepSpec::over([case_scenario()])
        .approaches(&[Approach::Teem])
        .tunables(&knobs);
    let mut agg = SweepAggregator::new();
    spec.run_streaming(|ev| {
        if let SweepEvent::CellDone { result, .. } = ev {
            agg.record(&result.summary);
        }
    })
    .expect("knob grid runs");
    let mut out = format!(
        "== ablation: delta x floor x threshold knob grid ({} cells, streamed) ==\n",
        agg.cells()
    );
    out.push_str(&agg.report());
    out
}

/// The default sweeps reported by `repro ablation`.
pub fn default_report() -> String {
    let mut out = String::new();
    out.push_str(&report(
        "threshold (C)",
        &threshold_sweep(&[80.0, 85.0, 90.0]),
    ));
    out.push_str(&report("delta (MHz)", &delta_sweep(&[100, 200, 400])));
    out.push_str(&report("floor (MHz)", &floor_sweep(&[1000, 1400, 1800])));
    out.push_str(&knob_grid_report());
    out.push_str(
        "[paper: 85 C chosen — higher thresholds add frequency-change overhead, lower ones\n miss performance; 1400 MHz floor from the frequency/performance characterisation]\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_85_is_the_controllable_sweet_spot() {
        let pts = threshold_sweep(&[80.0, 85.0, 90.0]);
        // The paper's setting holds the die trip-free...
        assert_eq!(pts[1].zone_trips, 0, "85C must not trip");
        // ...a hotter threshold rides hotter...
        assert!(pts[2].summary.avg_temp_c > pts[1].summary.avg_temp_c);
        // ...and a colder one re-plans more cores onto the die (eq. 6 at
        // a lower AT), which *heats* it — the scenario-level trade-off
        // the single-run ablation could not show.
        assert!(
            pts[0].summary.avg_temp_c > pts[1].summary.avg_temp_c,
            "80C: {:.1} vs 85C: {:.1}",
            pts[0].summary.avg_temp_c,
            pts[1].summary.avg_temp_c
        );
    }

    #[test]
    fn floor_sweep_trades_speed_for_control() {
        let pts = floor_sweep(&[1000, 1400, 1800]);
        // The paper floor keeps control.
        assert_eq!(pts[1].zone_trips, 0, "1400 MHz floor must not trip");
        // A floor above the sustainable frequency loses control — it
        // shows up as reactive trips, not average temperature.
        assert!(
            pts[2].zone_trips > 0,
            "1800 MHz floor must hit the reactive zone"
        );
        // A deep floor gives the stepper more room and costs time.
        assert!(
            pts[0].summary.execution_time_s >= pts[1].summary.execution_time_s,
            "{} vs {}",
            pts[0].summary.execution_time_s,
            pts[1].summary.execution_time_s
        );
        let text = report("floor (MHz)", &pts);
        assert!(text.contains("1400"));
    }

    #[test]
    fn delta_sweep_runs_trip_free() {
        let pts = delta_sweep(&[100, 400]);
        assert_eq!(pts.len(), 2);
        // Both step sizes keep the zone untripped on the case study.
        assert!(pts.iter().all(|p| p.zone_trips == 0));
    }

    #[test]
    fn knob_grid_reports_winners_and_front() {
        // Keep the test cheap: the full grid is exercised by the
        // example; here a spot check that the report renders.
        let r = knob_grid_report();
        assert!(r.contains("27 cells"));
        assert!(r.contains("pareto front"));
    }
}
