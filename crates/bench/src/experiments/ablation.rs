//! Ablations of TEEM's design choices, as the paper discusses in prose:
//! the 85 °C threshold ("either high overheads ... or miss performance
//! improvement opportunities"), the δ = 200 MHz step, and the 1400 MHz
//! floor ("1400 MHz was used due to the observation made while
//! evaluating the effects of various frequencies").

use crate::experiments::fig1::case_study_spec;
use teem_core::TeemGovernor;
use teem_soc::{Board, MHz, Simulation};
use teem_telemetry::RunSummary;

/// One ablation point.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// The varied parameter's value.
    pub value: f64,
    /// The run's summary.
    pub summary: RunSummary,
    /// Reactive-zone trips (non-zero means the setting lost control).
    pub zone_trips: u32,
}

fn run_with(governor: TeemGovernor) -> (RunSummary, u32) {
    let mut g = governor;
    let mut sim = Simulation::new(Board::odroid_xu4_ideal(), case_study_spec());
    let r = sim.run(&mut g);
    (r.summary, r.zone_trips)
}

/// Sweeps the thermal threshold (the paper explored several before
/// settling on 85 °C).
pub fn threshold_sweep(values_c: &[f64]) -> Vec<AblationPoint> {
    values_c
        .iter()
        .map(|&v| {
            let (summary, zone_trips) = run_with(TeemGovernor::with_threshold(v));
            AblationPoint {
                value: v,
                summary,
                zone_trips,
            }
        })
        .collect()
}

/// Sweeps the frequency step δ.
pub fn delta_sweep(values_mhz: &[u32]) -> Vec<AblationPoint> {
    values_mhz
        .iter()
        .map(|&v| {
            let mut g = TeemGovernor::paper();
            g.delta_mhz = v;
            let (summary, zone_trips) = run_with(g);
            AblationPoint {
                value: f64::from(v),
                summary,
                zone_trips,
            }
        })
        .collect()
}

/// Sweeps the frequency floor.
pub fn floor_sweep(values_mhz: &[u32]) -> Vec<AblationPoint> {
    values_mhz
        .iter()
        .map(|&v| {
            let mut g = TeemGovernor::paper();
            g.floor = MHz(v);
            let (summary, zone_trips) = run_with(g);
            AblationPoint {
                value: f64::from(v),
                summary,
                zone_trips,
            }
        })
        .collect()
}

/// Prints a sweep as a table.
pub fn report(name: &str, points: &[AblationPoint]) -> String {
    let mut out = format!("== ablation: {name} (CV, 2L+3B) ==\n");
    out.push_str(&format!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6}\n",
        "value", "ET(s)", "E(J)", "avgT(C)", "peakT(C)", "varT(C2)", "trips"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8.0} {:>8.1} {:>8.0} {:>8.1} {:>8.1} {:>9.2} {:>6}\n",
            p.value,
            p.summary.execution_time_s,
            p.summary.energy_j,
            p.summary.avg_temp_c,
            p.summary.peak_temp_c,
            p.summary.temp_variance,
            p.zone_trips
        ));
    }
    out
}

/// The default sweeps reported by `repro ablation`.
pub fn default_report() -> String {
    let mut out = String::new();
    out.push_str(&report(
        "threshold (C)",
        &threshold_sweep(&[80.0, 85.0, 90.0]),
    ));
    out.push_str(&report("delta (MHz)", &delta_sweep(&[100, 200, 400])));
    out.push_str(&report("floor (MHz)", &floor_sweep(&[1000, 1400, 1800])));
    out.push_str(
        "[paper: 85 C chosen — higher thresholds add frequency-change overhead, lower ones\n miss performance; 1400 MHz floor from the frequency/performance characterisation]\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_sweep_is_monotone_in_temperature() {
        let pts = threshold_sweep(&[80.0, 85.0, 90.0]);
        assert!(pts[0].summary.avg_temp_c < pts[2].summary.avg_temp_c);
        // Hotter threshold -> faster (higher sustainable frequency).
        assert!(
            pts[2].summary.execution_time_s <= pts[0].summary.execution_time_s,
            "{} vs {}",
            pts[2].summary.execution_time_s,
            pts[0].summary.execution_time_s
        );
    }

    #[test]
    fn floor_sweep_trades_control_for_speed() {
        let pts = floor_sweep(&[1000, 1400, 1800]);
        // A high floor loses thermal control (hotter average).
        assert!(pts[2].summary.avg_temp_c >= pts[0].summary.avg_temp_c);
        let text = report("floor (MHz)", &pts);
        assert!(text.contains("1400"));
    }

    #[test]
    fn delta_sweep_runs() {
        let pts = delta_sweep(&[100, 400]);
        assert_eq!(pts.len(), 2);
        // Both settings keep the zone untripped on the case study.
        assert!(pts.iter().all(|p| p.zone_trips == 0));
    }
}
