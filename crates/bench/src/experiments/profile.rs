//! Instrumented sweep profile: the `repro profile` artefact.
//!
//! Runs the acceptance-scale 500-cell grid (the same 5 scenarios ×
//! 10 thresholds × 10 ambients shape the `sweep_grid` bench streams)
//! through [`SweepSpec::run_instrumented`] and prints the campaign
//! post-mortem: the full [`MetricsSnapshot`] table (per-worker cell
//! counts, steal traffic, busy/idle split, per-cell wall-time
//! histogram) and the kernel time split between the power model, the
//! thermal integration, sensor sampling, trace recording, the
//! control/actuate phases and the rest of the step loop.
//!
//! [`SweepSpec::run_instrumented`]: teem_scenario::SweepSpec::run_instrumented
//! [`MetricsSnapshot`]: teem_telemetry::MetricsSnapshot

use std::fmt::Write as _;

use teem_core::runner::Approach;
use teem_scenario::{ConfigPatch, Scenario, SweepError, SweepObsReport, SweepRunStats, SweepSpec};
use teem_workload::App;

/// What the profile run measured.
#[derive(Debug)]
pub struct ProfileDemo {
    /// Run totals (cells, wall, throughput).
    pub stats: SweepRunStats,
    /// The assembled observability report.
    pub report: SweepObsReport,
}

/// The 500-cell profile grid — the `sweep_grid` bench's acceptance
/// shape, short cells so `repro profile` stays interactive.
fn grid_500() -> SweepSpec {
    let scenarios = vec![
        Scenario::new("p-mvt").arrive(0.0, App::Mvt, 0.9),
        Scenario::new("p-gesummv").arrive(0.0, App::Gesummv, 0.9),
        Scenario::new("p-syrk").arrive(0.0, App::Syrk, 0.9),
        Scenario::new("p-covariance").arrive(0.0, App::Covariance, 0.9),
        Scenario::new("p-mvt-tight").arrive(0.0, App::Mvt, 0.7),
    ];
    let thresholds: Vec<f64> = (0..10).map(|i| 80.0 + f64::from(i)).collect();
    let ambients: Vec<f64> = (0..10).map(|i| 15.0 + 2.0 * f64::from(i)).collect();
    SweepSpec::over(scenarios)
        .approaches(&[Approach::Teem])
        .thresholds_c(&thresholds)
        .ambients_c(&ambients)
        .patch_config(ConfigPatch {
            timeout_s: Some(2.0),
            ..ConfigPatch::default()
        })
        .threads(4)
}

/// Runs the instrumented 500-cell grid.
///
/// # Errors
///
/// Propagates any [`SweepError`] from the engine (a failed cell, a
/// poisoned pool).
pub fn run() -> Result<ProfileDemo, SweepError> {
    let spec = grid_500();
    let (stats, report) = spec.run_instrumented(|_| {})?;
    Ok(ProfileDemo { stats, report })
}

/// Formats the demo as the `repro profile` report.
pub fn report(d: &ProfileDemo) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== sweep profile (instrumented 500-cell grid) ==");
    let _ = writeln!(
        out,
        "{} cells on {} workers in {:.2} s ({:.0} cells/s), {} failed\n",
        d.stats.cells,
        d.report.workers,
        d.stats.wall.as_secs_f64(),
        d.stats.cells_per_sec(),
        d.stats.failed,
    );
    let _ = write!(out, "{}", d.report.snapshot().render());
    let _ = writeln!(out);
    let _ = write!(out, "{}", d.report.kernel_split());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_demo_accounts_and_reports() {
        let d = run().expect("profile grid runs");
        assert_eq!(d.stats.cells, 500);
        assert_eq!(d.stats.failed, 0);
        let snap = d.report.snapshot();
        let worker_cells: u64 = (0..d.report.workers)
            .map(|w| snap.counter(&format!("worker.{w:02}.cells")).unwrap_or(0))
            .sum();
        assert_eq!(worker_cells, d.stats.cells as u64);
        let r = report(&d);
        assert!(r.contains("500 cells"), "{r}");
        assert!(r.contains("kernel time split"), "{r}");
        assert!(r.contains("power model"), "{r}");
        assert!(r.contains("sensor sampling"), "{r}");
        assert!(r.contains("trace recording"), "{r}");
        assert!(r.contains("control+actuate"), "{r}");
    }
}
