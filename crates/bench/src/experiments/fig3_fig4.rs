//! Experiments `fig3` and `fig4`: the scatter-matrix data behind the
//! collinearity diagnosis (Fig. 3) and the residuals-vs-fitted plot of
//! the transformed model (Fig. 4).

use teem_core::offline::{fit_transformed_model, full_dataset, regression_observations};
use teem_linreg::corr::{to_csv, CorrelationMatrix};
use teem_soc::Board;
use teem_telemetry::TimeSeries;

/// Fig. 3 outputs: the observation CSV (for external scatter plotting)
/// and the correlation matrix that drives the paper's "masking"
/// discussion.
#[derive(Debug)]
pub struct Fig3 {
    /// CSV of `(M, AT, ET, PT, EC)` rows.
    pub csv: String,
    /// Pairwise Pearson correlations.
    pub correlations: CorrelationMatrix,
    /// The collinear pairs with |r| >= 0.7.
    pub strong_pairs: Vec<(String, String, f64)>,
}

/// Runs the Fig. 3 analysis on the Table I/II observation set (the
/// paper's scatter matrix visualises the same data its regressions use).
pub fn fig3() -> Fig3 {
    let board = Board::odroid_xu4_ideal();
    let data = full_dataset(&regression_observations(&board));
    let correlations = CorrelationMatrix::of(&data).expect("correlations");
    let strong_pairs = correlations.strongly_correlated(0.7);
    Fig3 {
        csv: to_csv(&data),
        correlations,
        strong_pairs,
    }
}

/// Prints the Fig. 3 report.
pub fn report_fig3(f: &Fig3) -> String {
    let mut out = String::new();
    out.push_str("== fig3: scatter-matrix data and correlations ==\n");
    out.push_str(&f.correlations.to_string());
    out.push_str("strongly correlated pairs (|r| >= 0.7):\n");
    for (a, b, r) in &f.strong_pairs {
        out.push_str(&format!("  {a} ~ {b}: r = {r:+.3}\n"));
    }
    out.push_str("[paper: AT~PT and ET~EC closely associated -> PT, EC dropped]\n");
    out.push_str("\n--- observation CSV ---\n");
    out.push_str(&f.csv);
    out
}

/// Fig. 4 outputs: residuals vs fitted of the transformed model.
#[derive(Debug)]
pub struct Fig4 {
    /// `(fitted, residual)` pairs.
    pub points: Vec<(f64, f64)>,
    /// Largest |residual|.
    pub max_abs_residual: f64,
}

/// Runs the Fig. 4 analysis.
pub fn fig4() -> Fig4 {
    let board = Board::odroid_xu4_ideal();
    let t = fit_transformed_model(&regression_observations(&board)).expect("fits");
    let points: Vec<(f64, f64)> = t
        .fit
        .fitted()
        .iter()
        .copied()
        .zip(t.fit.residuals().iter().copied())
        .collect();
    let max_abs_residual = points.iter().map(|p| p.1.abs()).fold(0.0, f64::max);
    Fig4 {
        points,
        max_abs_residual,
    }
}

/// Prints the Fig. 4 report with an ASCII residual plot.
pub fn report_fig4(f: &Fig4) -> String {
    let mut sorted = f.points.clone();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fitted values"));
    let series: TimeSeries = sorted.into_iter().collect();
    let mut out = String::new();
    out.push_str("== fig4: residuals vs fitted (transformed model) ==\n");
    out.push_str(&teem_telemetry::plot::ascii_chart(
        &series,
        64,
        12,
        "residuals vs fitted",
    ));
    out.push_str("fitted,residual\n");
    for (x, y) in &f.points {
        out.push_str(&format!("{x:.5},{y:.5}\n"));
    }
    out.push_str(&format!(
        "max |residual| = {:.4} [paper: residuals in -0.346..0.226, randomly scattered]\n",
        f.max_abs_residual
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_finds_the_papers_collinear_pairs() {
        let f = fig3();
        let has = |a: &str, b: &str| {
            f.strong_pairs
                .iter()
                .any(|(x, y, _)| (x == a && y == b) || (x == b && y == a))
        };
        assert!(has("AT", "PT"), "AT~PT missing from {:?}", f.strong_pairs);
        assert!(has("ET", "EC"), "ET~EC missing from {:?}", f.strong_pairs);
        assert!(f.csv.lines().count() > 10);
        assert!(f.csv.starts_with("M,AT,ET,PT,EC"));
    }

    #[test]
    fn fig4_residuals_are_small_and_centred() {
        let f = fig4();
        assert_eq!(f.points.len(), 16);
        // Residuals sum to ~0 (OLS with intercept).
        let sum: f64 = f.points.iter().map(|p| p.1).sum();
        assert!(sum.abs() < 1e-8, "residual sum {sum}");
        // Comparable scale to the paper's +-0.35 band.
        assert!(f.max_abs_residual < 0.5, "{}", f.max_abs_residual);
        let text = report_fig4(&f);
        assert!(text.contains("fitted,residual"));
    }
}
