//! One module per paper artefact: each regenerates the corresponding
//! table or figure and prints measured-vs-paper values.

pub mod ablation;
pub mod fig1;
pub mod fig3_fig4;
pub mod fig5;
pub mod memory;
pub mod profile;
pub mod resume;
pub mod tables;
