//! A dependency-free micro-benchmark harness.
//!
//! The build environment has no access to crates.io, so the Criterion
//! dependency the benches originally used is replaced by this small
//! wall-clock harness: warm up, choose a batch size targeting a fixed
//! batch duration, time several batches, report best/mean ns per
//! iteration. Benches are declared with `harness = false` and drive a
//! [`Runner`] from `main`.
//!
//! ```sh
//! cargo bench -p teem-bench --bench thermal_step            # all
//! cargo bench -p teem-bench --bench thermal_step -- steady  # filtered
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed batches per benchmark.
const BATCHES: u32 = 5;
/// Target wall-clock duration of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(50);

/// One benchmark's timing result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Best (minimum) time per iteration, nanoseconds.
    pub best_ns: f64,
    /// Mean time per iteration across batches, nanoseconds.
    pub mean_ns: f64,
    /// Iterations per timed batch.
    pub batch_iters: u64,
}

impl BenchResult {
    /// Best-case throughput, iterations per second — the steps/sec
    /// figure for the step-kernel benches.
    pub fn best_per_sec(&self) -> f64 {
        if self.best_ns > 0.0 {
            1e9 / self.best_ns
        } else {
            f64::INFINITY
        }
    }
}

/// Collects and prints benchmark timings; constructed from the CLI
/// arguments Cargo forwards after `--` (used as substring filters).
///
/// Passing `--smoke` (or setting `TEEM_BENCH_SMOKE=1`) switches to
/// smoke mode: every selected benchmark executes exactly once, with no
/// warm-up or batch calibration. CI uses this to keep the perf path
/// compiled *and exercised* on every push without paying measurement-
/// quality iteration counts.
#[derive(Debug, Default)]
pub struct Runner {
    filters: Vec<String>,
    smoke: bool,
    results: Vec<BenchResult>,
}

impl Runner {
    /// A runner honouring CLI substring filters (Cargo's own flags such
    /// as `--bench` are ignored) and the `--smoke` /
    /// `TEEM_BENCH_SMOKE=1` one-iteration mode.
    pub fn from_args() -> Self {
        Runner {
            filters: std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect(),
            smoke: std::env::args().skip(1).any(|a| a == "--smoke")
                || std::env::var("TEEM_BENCH_SMOKE").is_ok_and(|v| v == "1"),
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Times `f`, auto-scaling the batch size to the target batch
    /// duration (`BATCH_TARGET`).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        if self.smoke {
            self.timed(name, 1, f);
            return;
        }
        // Warm-up and batch-size calibration: double until one batch
        // takes long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || iters >= 1 << 24 {
                break;
            }
            let scale =
                (BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(2.0, 1024.0);
            iters = (iters as f64 * scale).ceil() as u64;
        }
        self.timed(name, iters, f);
    }

    /// Times `f` with a fixed number of iterations per batch — for
    /// heavyweight benches where auto-scaling would be too slow.
    pub fn bench_heavy<T>(&mut self, name: &str, iters_per_batch: u64, mut f: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        if self.smoke {
            self.timed(name, 1, f);
            return;
        }
        black_box(f()); // warm-up
        self.timed(name, iters_per_batch.max(1), f);
    }

    fn timed<T>(&mut self, name: &str, iters: u64, mut f: impl FnMut() -> T) {
        let batches = if self.smoke { 1 } else { BATCHES };
        let mut batch_ns = Vec::with_capacity(batches as usize);
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            batch_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let best = batch_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = batch_ns.iter().sum::<f64>() / batch_ns.len() as f64;
        let result = BenchResult {
            name: name.to_string(),
            best_ns: best,
            mean_ns: mean,
            batch_iters: iters,
        };
        println!(
            "{:<44} best {:>12}  mean {:>12}  {:>14}  ({} it/batch)",
            result.name,
            fmt_ns(result.best_ns),
            fmt_ns(result.mean_ns),
            fmt_rate(result.best_per_sec()),
            result.batch_iters
        );
        self.results.push(result);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary line.
    pub fn finish(&self) {
        println!("{} benchmark(s) run", self.results.len());
    }
}

/// Formats an iterations-per-second throughput with an adaptive unit.
fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M it/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k it/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} it/s")
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut r = Runner::default();
        let mut counter = 0u64;
        r.bench("noop_increment", || {
            counter += 1;
            counter
        });
        assert_eq!(r.results().len(), 1);
        let res = &r.results()[0];
        assert!(res.best_ns >= 0.0 && res.best_ns <= res.mean_ns * 1.0001);
        assert!(counter > 0);
    }

    #[test]
    fn filters_skip_unmatched_names() {
        let mut r = Runner {
            filters: vec!["thermal".into()],
            smoke: false,
            results: Vec::new(),
        };
        r.bench("regression_fit", || 1);
        assert!(r.results().is_empty());
        r.bench_heavy("thermal_step", 2, || 1);
        assert_eq!(r.results().len(), 1);
    }

    #[test]
    fn formats_units() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("us"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
        assert!(fmt_ns(2.3e9).contains('s'));
        assert!(fmt_rate(25.0e6).contains("M it/s"));
        assert!(fmt_rate(8_000.0).contains("k it/s"));
        assert!(fmt_rate(7.5).contains("it/s"));
    }

    #[test]
    fn smoke_mode_runs_each_bench_exactly_once() {
        let mut r = Runner {
            filters: Vec::new(),
            smoke: true,
            results: Vec::new(),
        };
        let mut light = 0u64;
        r.bench("light", || light += 1);
        let mut heavy = 0u64;
        r.bench_heavy("heavy", 50, || heavy += 1);
        assert_eq!(light, 1, "smoke bench must execute once");
        assert_eq!(heavy, 1, "smoke bench_heavy must skip warm-up too");
        assert_eq!(r.results().len(), 2);
        assert_eq!(r.results()[0].batch_iters, 1);
    }

    #[test]
    fn throughput_is_inverse_of_best_time() {
        let res = BenchResult {
            name: "x".into(),
            best_ns: 100.0,
            mean_ns: 120.0,
            batch_iters: 1,
        };
        assert!((res.best_per_sec() - 1e7).abs() < 1e-6);
    }
}
