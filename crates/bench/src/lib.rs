//! # teem-bench
//!
//! The experiment harness of the TEEM reproduction: one module per table
//! and figure in the paper's evaluation (§IV–V), each regenerating the
//! artefact on the simulated board and printing measured values next to
//! the paper's, plus the ablation sweeps for TEEM's design parameters.
//!
//! Run everything with the `repro` binary:
//!
//! ```sh
//! cargo run --release -p teem-bench --bin repro -- all
//! ```
//!
//! Micro-benchmarks for the underlying machinery (regression fitting,
//! thermal stepping, design-space enumeration, online decision latency,
//! kernel execution, scenario execution) live in `benches/`, driven by
//! the dependency-free [`microbench`] harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod microbench;
