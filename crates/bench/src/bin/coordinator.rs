//! `teem-coordinator` — distributed sharded sweep campaigns.
//!
//! One binary, both roles: the **coordinator** spawns itself in
//! **worker** mode once per shard, supervises the worker journals for
//! liveness, re-shards a dead or stalled worker's remaining cells onto
//! survivors, and merges every journal into one verified whole whose
//! `journal_digest` equals an uninterrupted single-process run's.
//!
//! ```sh
//! # 3-process campaign of the 500-cell acceptance grid, verified
//! # against an in-process single-run reference digest:
//! teem-coordinator run --grid acceptance --workers 3 --dir /tmp/camp --verify
//!
//! # same, but worker 1 aborts itself after 30 durable records —
//! # deterministic stand-in for a SIGKILL mid-shard; the campaign
//! # re-shards its remaining cells and still verifies:
//! teem-coordinator run --grid acceptance --workers 3 --dir /tmp/camp \
//!     --kill 1@30 --verify
//!
//! # the single-process reference (prints the same digest):
//! teem-coordinator single --grid acceptance
//!
//! # offline merge of shard journals:
//! teem-coordinator merge /tmp/camp/shard_*.jsonl
//! ```
//!
//! Worker mode (`teem-coordinator worker ...`) is spawned by the
//! coordinator, not by hand; its flags encode a `WorkerAssignment`
//! (`--shard`, `--part`, `--exclude`) plus the failure-injection knobs
//! `--die-after K` (sync the journal, then `abort()` after the K-th
//! done record) and `--hang-after K` (stop making progress — exercises
//! the coordinator's stall timeout).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use teem_core::runner::Approach;
use teem_scenario::{
    journal_digest, metrics_sidecar, run_campaign, CampaignOpts, ConfigPatch, LoadedJournal,
    Scenario, ShardSpec, SweepEvent, SweepJournal, SweepSpec, WorkerAssignment,
};
use teem_telemetry::CellRecord;
use teem_workload::App;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         teem-coordinator run --grid <small|acceptance> --dir DIR [--workers N] \
         [--kill I@R] [--hang I@R] [--stall-timeout-ms T] [--merged PATH] [--verify] \
         [--progress]\n  \
         teem-coordinator single --grid <small|acceptance> [--journal PATH]\n  \
         teem-coordinator merge JOURNAL... [--out PATH]\n  \
         teem-coordinator worker --grid G --journal PATH --shard LABEL [--part J/M] \
         [--exclude PATH]... [--fsync-every N] [--die-after K] [--hang-after K]"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("teem-coordinator: {message}");
    std::process::exit(1);
}

/// The built-in campaign grids. `acceptance` is the 500-cell grid the
/// resume acceptance test pins (5 scenarios × 10 thresholds × 10
/// ambients, 2 s cells); `small` is a 60-cell debug-friendly cut of
/// the same axes for integration tests.
fn grid(name: &str) -> SweepSpec {
    let short = ConfigPatch {
        timeout_s: Some(2.0),
        ..ConfigPatch::default()
    };
    match name {
        "acceptance" => {
            let scenarios = vec![
                Scenario::new("s-mvt").arrive(0.0, App::Mvt, 0.9),
                Scenario::new("s-gesummv").arrive(0.0, App::Gesummv, 0.9),
                Scenario::new("s-syrk").arrive(0.0, App::Syrk, 0.9),
                Scenario::new("s-atax").arrive(0.0, App::Mvt, 0.7),
                Scenario::new("s-pair")
                    .arrive(0.0, App::Gesummv, 0.9)
                    .arrive(0.5, App::Mvt, 0.9),
            ];
            let thresholds: Vec<f64> = (0..10).map(|i| 80.0 + i as f64).collect();
            let ambients: Vec<f64> = (0..10).map(|i| 15.0 + 2.0 * i as f64).collect();
            let spec = SweepSpec::over(scenarios)
                .thresholds_c(&thresholds)
                .ambients_c(&ambients)
                .patch_config(short)
                .threads(4);
            assert_eq!(spec.cells(), 500);
            spec
        }
        "small" => {
            let scenarios = vec![
                Scenario::new("mvt").arrive(0.0, App::Mvt, 0.9),
                Scenario::new("gesummv").arrive(0.0, App::Gesummv, 0.9),
            ];
            let thresholds: Vec<f64> = [80.0, 83.0, 86.0].to_vec();
            let ambients: Vec<f64> = (0..5).map(|i| 15.0 + 10.0 * i as f64).collect();
            let spec = SweepSpec::over(scenarios)
                .approaches(&[Approach::Teem, Approach::Ondemand])
                .thresholds_c(&thresholds)
                .ambients_c(&ambients)
                .patch_config(short)
                .threads(2);
            assert_eq!(spec.cells(), 60);
            spec
        }
        other => fail(format!("unknown grid `{other}` (small|acceptance)")),
    }
}

/// The uninterrupted single-process reference records of `spec`.
fn reference_records(spec: &SweepSpec) -> Vec<CellRecord> {
    let mut records = Vec::new();
    spec.run_streaming(|ev| {
        if let SweepEvent::CellDone { cell, result } = ev {
            records.push(CellRecord::from_summary(
                cell.index,
                &result.summary,
                result.trace.digest(),
            ));
        }
    })
    .unwrap_or_else(|e| fail(format!("reference sweep failed: {e}")));
    records
}

/// A tiny flag cursor over `args` — everything here is `--flag value`
/// or a positional.
struct Args {
    args: Vec<String>,
    used: Vec<bool>,
}

impl Args {
    fn new(args: Vec<String>) -> Self {
        let used = vec![false; args.len()];
        Args { args, used }
    }

    fn flag_value(&mut self, name: &str) -> Option<String> {
        let at = self
            .args
            .iter()
            .enumerate()
            .position(|(i, a)| !self.used[i] && a == name)?;
        if at + 1 >= self.args.len() || self.used[at + 1] {
            fail(format!("flag {name} needs a value"));
        }
        self.used[at] = true;
        self.used[at + 1] = true;
        Some(self.args[at + 1].clone())
    }

    fn flag_values(&mut self, name: &str) -> Vec<String> {
        let mut values = Vec::new();
        while let Some(v) = self.flag_value(name) {
            values.push(v);
        }
        values
    }

    fn flag(&mut self, name: &str) -> bool {
        match self.args.iter().position(|a| a == name) {
            Some(at) => {
                self.used[at] = true;
                true
            }
            None => false,
        }
    }

    fn positionals(self) -> Vec<String> {
        let leftovers: Vec<String> = self
            .args
            .into_iter()
            .zip(self.used)
            .filter(|(_, used)| !used)
            .map(|(a, _)| a)
            .collect();
        if let Some(stray) = leftovers.iter().find(|a| a.starts_with("--")) {
            fail(format!("unknown flag {stray}"));
        }
        leftovers
    }

    fn finish(self) {
        let leftovers = self.positionals();
        if !leftovers.is_empty() {
            fail(format!("unexpected arguments: {leftovers:?}"));
        }
    }
}

fn parse_usize(text: &str, what: &str) -> usize {
    text.parse()
        .unwrap_or_else(|_| fail(format!("{what} `{text}` is not a number")))
}

/// Parses an `I@R` injection spec (worker ordinal @ record count).
fn parse_at(text: &str, what: &str) -> (usize, usize) {
    let (i, r) = text
        .split_once('@')
        .unwrap_or_else(|| fail(format!("{what} must be I@R, got `{text}`")));
    (parse_usize(i, what), parse_usize(r, what))
}

// ---------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------

fn worker(mut args: Args) -> ! {
    let spec = grid(&args.flag_value("--grid").unwrap_or_else(|| usage()));
    let journal_path = PathBuf::from(args.flag_value("--journal").unwrap_or_else(|| usage()));
    let shard: ShardSpec = args
        .flag_value("--shard")
        .unwrap_or_else(|| usage())
        .parse()
        .unwrap_or_else(|e| fail(e));
    let part = args.flag_value("--part").map(|p| {
        let (j, m) = p
            .split_once('/')
            .unwrap_or_else(|| fail(format!("--part must be J/M, got `{p}`")));
        (parse_usize(j, "--part"), parse_usize(m, "--part"))
    });
    let exclude: Vec<PathBuf> = args
        .flag_values("--exclude")
        .into_iter()
        .map(PathBuf::from)
        .collect();
    let fsync_every = args
        .flag_value("--fsync-every")
        .map(|v| parse_usize(&v, "--fsync-every"))
        .unwrap_or(1);
    let die_after = args
        .flag_value("--die-after")
        .map(|v| parse_usize(&v, "--die-after"));
    let hang_after = args
        .flag_value("--hang-after")
        .map(|v| parse_usize(&v, "--hang-after"));
    args.finish();

    let assignment = WorkerAssignment {
        shard,
        part,
        exclude,
    };
    let restricted = assignment
        .apply(spec)
        .unwrap_or_else(|e| fail(format!("assignment does not apply: {e}")));
    let mut journal = SweepJournal::create(&journal_path, &restricted)
        .unwrap_or_else(|e| fail(format!("cannot create journal: {e}")))
        .with_fsync_every(fsync_every);

    let mut done = 0usize;
    let (_, report) = restricted
        .run_instrumented(|ev| {
            journal.observe(&ev).expect("journal write");
            if matches!(ev, SweepEvent::CellDone { .. }) {
                done += 1;
                if Some(done) == die_after {
                    // A deterministic stand-in for SIGKILL mid-shard:
                    // make the K-th record durable, then die without
                    // unwinding (no Drop, no final sync, no sidecar).
                    journal.sync().expect("final sync before dying");
                    std::process::abort();
                }
                if Some(done) == hang_after {
                    // A straggler that is alive but silent — the
                    // coordinator's stall timeout must reap it.
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
            }
        })
        .unwrap_or_else(|e| fail(format!("shard sweep failed: {e}")));
    let mut report = report;
    report.add_journal(&journal.io_stats());
    drop(journal);

    // The metrics sidecar is written only on clean completion — a dead
    // worker contributes no metrics, and the campaign merge tolerates
    // the absence.
    let sidecar = metrics_sidecar(&journal_path);
    std::fs::write(&sidecar, report.snapshot().to_json())
        .unwrap_or_else(|e| fail(format!("cannot write metrics sidecar: {e}")));
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// run (coordinator)
// ---------------------------------------------------------------------

fn run(mut args: Args) -> ! {
    let grid_name = args.flag_value("--grid").unwrap_or_else(|| usage());
    let dir = PathBuf::from(args.flag_value("--dir").unwrap_or_else(|| usage()));
    let workers = args
        .flag_value("--workers")
        .map(|v| parse_usize(&v, "--workers"))
        .unwrap_or(3);
    let kill = args.flag_value("--kill").map(|v| parse_at(&v, "--kill"));
    let hang = args.flag_value("--hang").map(|v| parse_at(&v, "--hang"));
    let stall_timeout = Duration::from_millis(
        args.flag_value("--stall-timeout-ms")
            .map(|v| parse_usize(&v, "--stall-timeout-ms") as u64)
            .unwrap_or(120_000),
    );
    let merged_path = args.flag_value("--merged").map(PathBuf::from);
    let verify = args.flag("--verify");
    let progress = args.flag("--progress");
    args.finish();
    if workers == 0 {
        fail("--workers must be at least 1");
    }

    let spec = grid(&grid_name);
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(format!("cannot locate own executable: {e}")));

    let mut opts = CampaignOpts::new(workers, &dir);
    opts.stall_timeout = stall_timeout;
    opts.progress = progress;

    // Failure injection rides on the spawn closure: the first
    // `workers` spawns are the initial generation (ordinals 0..N), and
    // the chosen ordinal gets a self-destruct (`--die-after`, a
    // durable-then-abort stand-in for SIGKILL) or a stall
    // (`--hang-after`). Replacements never inherit the injection.
    let mut ordinal = 0usize;
    let spawn = |assignment: &WorkerAssignment, journal: &Path| -> Command {
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .arg("--grid")
            .arg(&grid_name)
            .arg("--journal")
            .arg(journal)
            .arg("--shard")
            .arg(assignment.shard.to_string())
            .arg("--fsync-every")
            .arg("1");
        if let Some((j, m)) = assignment.part {
            cmd.arg("--part").arg(format!("{j}/{m}"));
        }
        for path in &assignment.exclude {
            cmd.arg("--exclude").arg(path);
        }
        if let Some((victim, records)) = kill {
            if ordinal == victim {
                cmd.arg("--die-after").arg(records.to_string());
            }
        }
        if let Some((victim, records)) = hang {
            if ordinal == victim {
                cmd.arg("--hang-after").arg(records.to_string());
            }
        }
        ordinal += 1;
        cmd
    };

    let outcome =
        run_campaign(&spec, &opts, spawn).unwrap_or_else(|e| fail(format!("campaign failed: {e}")));

    println!(
        "campaign complete: {} cells over {} journals ({} deaths, {} stalls killed)",
        outcome.merged.records.len(),
        outcome.journals.len(),
        outcome.deaths,
        outcome.stalls_killed
    );
    println!("merged digest {:016x}", outcome.digest);
    if let Some(metrics) = &outcome.metrics {
        if let Some(cells) = metrics.counter("sweep.cells") {
            println!("merged metrics: sweep.cells {cells} (surviving shards only)");
        }
    }
    if let Some(path) = merged_path {
        outcome
            .merged
            .write_to(&path)
            .unwrap_or_else(|e| fail(format!("cannot write merged journal: {e}")));
        println!("merged journal written to {}", path.display());
    }
    if verify {
        let reference = reference_records(&spec);
        let expected = journal_digest(&reference);
        if outcome.digest != expected {
            fail(format!(
                "VERIFY FAILED: merged digest {:016x} != single-process digest {expected:016x}",
                outcome.digest
            ));
        }
        println!("verified: digest-identical to the single-process run");
    }
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// single, merge
// ---------------------------------------------------------------------

fn single(mut args: Args) -> ! {
    let spec = grid(&args.flag_value("--grid").unwrap_or_else(|| usage()));
    let journal_path = args.flag_value("--journal").map(PathBuf::from);
    args.finish();

    let records = match &journal_path {
        Some(path) => {
            let mut journal = SweepJournal::create(path, &spec)
                .unwrap_or_else(|e| fail(format!("cannot create journal: {e}")));
            let mut records = Vec::new();
            spec.run_streaming(|ev| {
                journal.observe(&ev).expect("journal write");
                if let SweepEvent::CellDone { cell, result } = ev {
                    records.push(CellRecord::from_summary(
                        cell.index,
                        &result.summary,
                        result.trace.digest(),
                    ));
                }
            })
            .unwrap_or_else(|e| fail(format!("sweep failed: {e}")));
            records
        }
        None => reference_records(&spec),
    };
    println!("single-process run: {} cells", records.len());
    println!("merged digest {:016x}", journal_digest(&records));
    std::process::exit(0);
}

fn merge(mut args: Args) -> ! {
    let out = args.flag_value("--out").map(PathBuf::from);
    let paths = args.positionals();
    if paths.is_empty() {
        usage();
    }
    let journals: Vec<LoadedJournal> = paths
        .iter()
        .map(|p| LoadedJournal::load(p).unwrap_or_else(|e| fail(format!("{p}: {e}"))))
        .collect();
    let merged =
        SweepJournal::merge(&journals).unwrap_or_else(|e| fail(format!("merge refused: {e}")));
    println!(
        "merged {} journals: {} cells, {} failures on record",
        journals.len(),
        merged.records.len(),
        merged.failed.len()
    );
    println!("merged digest {:016x}", journal_digest(&merged.records));
    if let Some(path) = out {
        merged
            .write_to(&path)
            .unwrap_or_else(|e| fail(format!("cannot write merged journal: {e}")));
        println!("merged journal written to {}", path.display());
    }
    std::process::exit(0);
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv.remove(0);
    let args = Args::new(argv);
    match command.as_str() {
        "run" => run(args),
        "worker" => worker(args),
        "single" => single(args),
        "merge" => merge(args),
        _ => usage(),
    }
}
