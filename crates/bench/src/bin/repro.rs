//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all            # everything
//! repro fig1           # motivational case study
//! repro table1 table2  # regression tables
//! repro fig3 fig4      # scatter matrix / residual plot
//! repro fig5a fig5b fig5c
//! repro mem            # section V-D memory accounting
//! repro ablation       # threshold / delta / floor sweeps
//! repro resume         # crash-safe sweep resume (persisted journal)
//! repro profile        # instrumented 500-cell sweep: metrics + kernel split
//! ```

use teem_bench::experiments::{ablation, fig1, fig3_fig4, fig5, memory, profile, resume, tables};

fn usage() -> ! {
    eprintln!(
        "usage: repro [all|fig1|table1|table2|fig3|fig4|fig5a|fig5b|fig5c|fig5|mem|ablation|resume|profile]..."
    );
    std::process::exit(2);
}

fn run_profile() -> String {
    match profile::run() {
        Ok(d) => profile::report(&d),
        Err(e) => format!("profile failed: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut fig5_cache: Option<fig5::Fig5> = None;
    let fig5_data = |cache: &mut Option<fig5::Fig5>| -> fig5::Fig5 {
        if cache.is_none() {
            *cache = Some(fig5::run_all());
        }
        cache.clone().expect("populated above")
    };

    for arg in &args {
        match arg.as_str() {
            "all" => {
                println!("{}", fig1::report(&fig1::run()));
                println!("{}", tables::report_table1(&tables::table1()));
                println!("{}", tables::report_table2(&tables::table2()));
                println!("{}", fig3_fig4::report_fig3(&fig3_fig4::fig3()));
                println!("{}", fig3_fig4::report_fig4(&fig3_fig4::fig4()));
                let f = fig5_data(&mut fig5_cache);
                println!("{}", fig5::report_a(&f));
                println!("{}", fig5::report_b(&f));
                println!("{}", fig5::report_c(&f));
                println!("{}", memory::report(&memory::run()));
                println!("{}", ablation::default_report());
                println!("{}", resume::report(&resume::run()));
                println!("{}", run_profile());
            }
            "fig1" => println!("{}", fig1::report(&fig1::run())),
            "table1" => println!("{}", tables::report_table1(&tables::table1())),
            "table2" => println!("{}", tables::report_table2(&tables::table2())),
            "fig3" => println!("{}", fig3_fig4::report_fig3(&fig3_fig4::fig3())),
            "fig4" => println!("{}", fig3_fig4::report_fig4(&fig3_fig4::fig4())),
            "fig5" => {
                let f = fig5_data(&mut fig5_cache);
                println!("{}", fig5::report_a(&f));
                println!("{}", fig5::report_b(&f));
                println!("{}", fig5::report_c(&f));
            }
            "fig5a" => println!("{}", fig5::report_a(&fig5_data(&mut fig5_cache))),
            "fig5b" => println!("{}", fig5::report_b(&fig5_data(&mut fig5_cache))),
            "fig5c" => println!("{}", fig5::report_c(&fig5_data(&mut fig5_cache))),
            "mem" | "memory" => println!("{}", memory::report(&memory::run())),
            "ablation" => println!("{}", ablation::default_report()),
            "resume" => println!("{}", resume::report(&resume::run())),
            "profile" => println!("{}", run_profile()),
            _ => usage(),
        }
    }
}
