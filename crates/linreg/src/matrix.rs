//! A small dense row-major matrix sufficient for OLS normal equations.
//!
//! This is intentionally not a general-purpose linear-algebra library: TEEM's
//! offline phase fits models with a handful of predictors over tens of
//! observations, so an allocation-light `Vec<f64>`-backed matrix with `O(n^3)`
//! dense algorithms is the right tool.

use crate::error::{LinregError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use teem_linreg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// # Ok::<(), teem_linreg::LinregError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::RaggedRows`] if rows differ in length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinregError::RaggedRows {
                    expected: cols,
                    found: r.len(),
                    row: i,
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinregError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::DimensionMismatch`] when
    /// `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinregError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Computes `self^T * self`, the Gram matrix used in the OLS normal
    /// equations. Exploits symmetry (only the upper triangle is computed).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns `true` when every corresponding element differs by at most
    /// `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert_eq!(
            err,
            LinregError::RaggedRows {
                expected: 2,
                found: 1,
                row: 1
            }
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinregError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn gram_is_xtx() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = x.gram();
        let xtx = x.transpose().matmul(&x).unwrap();
        assert!(g.approx_eq(&xtx, 1e-12));
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn row_and_col_accessors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }
}
