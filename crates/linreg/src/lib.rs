//! # teem-linreg
//!
//! Linear-regression substrate for the TEEM reproduction — a from-scratch
//! replacement for the R workflow the paper uses in its offline phase
//! ("Linear regression in R was used to determine the model", §III-A.3).
//!
//! The paper's Tables I and II are verbatim `summary(lm(...))` output; this
//! crate reproduces every statistic they contain:
//!
//! * coefficient estimates, standard errors, t values and `Pr(>|t|)`
//!   ([`ols`], [`dist`]),
//! * residual five-number summary and residual standard error
//!   ([`quantile`]),
//! * multiple/adjusted R² and the overall F-test ([`ols`]),
//! * the R-style text rendering ([`summary`]),
//! * the Fig. 3 scatter-matrix / collinearity analysis ([`corr`]).
//!
//! # Examples
//!
//! Fit the paper's transformed model shape, `log10(M) = β0 + β1·AT + β2·ET`:
//!
//! ```
//! use teem_linreg::{Dataset, summary::Summary};
//!
//! let mut d = Dataset::new("M");
//! d.push_predictor("AT", vec![84.0, 86.0, 88.0, 90.0, 92.0, 93.0, 95.0]);
//! d.push_predictor("ET", vec![55.0, 48.0, 42.0, 36.0, 31.0, 28.0, 25.0]);
//! d.set_response(vec![8.0, 7.0, 5.5, 4.2, 3.1, 2.4, 2.0]);
//! let logd = d.map_response("log(M)", f64::log10)?;
//! let fit = logd.fit()?;
//! println!("{}", Summary::new(&fit));
//! assert!(fit.r_squared() > 0.9);
//! # Ok::<(), teem_linreg::LinregError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corr;
pub mod dist;
pub mod eigen;
mod error;
mod matrix;
pub mod ols;
pub mod quantile;
pub mod solve;
pub mod summary;

pub use error::{LinregError, Result};
pub use matrix::Matrix;
pub use ols::{Coefficient, Dataset, OlsFit};

#[cfg(test)]
mod integration {
    use super::*;

    /// End-to-end: replicate the paper's modelling narrative on synthetic
    /// data — full model has collinearity-masked predictors, reduced
    /// log-model is strongly significant.
    #[test]
    fn paper_style_workflow() {
        // Synthetic profile data with the paper's structure: AT and ET vary
        // on (almost) independent grids so neither masks the other, while
        // PT tracks AT and EC tracks ET (the collinear pairs of Fig. 3).
        let n = 17;
        let at: Vec<f64> = (0..n)
            .map(|i| 82.0 + 3.0 * ((i % 4) as f64) + 0.2 * ((i / 4) as f64))
            .collect();
        let et: Vec<f64> = (0..n)
            .map(|i| 25.0 + 8.0 * ((i / 4) as f64) + 0.5 * ((i % 3) as f64))
            .collect();
        let pt: Vec<f64> = at
            .iter()
            .enumerate()
            .map(|(i, v)| v + 2.0 + 0.3 * ((i % 5) as f64))
            .collect();
        let ec: Vec<f64> = et
            .iter()
            .enumerate()
            .map(|(i, v)| 8.0 * v + 6.0 * ((i * i % 7) as f64))
            .collect();
        let m: Vec<f64> = at
            .iter()
            .zip(et.iter())
            .enumerate()
            .map(|(i, (a, e))| {
                let log_m = 2.6 - 0.018 * a - 0.012 * e + 0.02 * ((i % 5) as f64 - 2.0);
                10f64.powf(log_m)
            })
            .collect();

        let mut d = Dataset::new("M");
        d.push_predictor("AT", at);
        d.push_predictor("ET", et);
        d.push_predictor("PT", pt);
        d.push_predictor("EC", ec);
        d.set_response(m);

        let full = d.fit().expect("full model fits");
        assert_eq!(full.df_residual(), 12); // n=17, p=4 -> 12 DF as Table I

        // Collinearity: AT/PT pair strongly correlated.
        let corr = corr::CorrelationMatrix::of(&d).unwrap();
        assert!(corr.between("AT", "PT").unwrap().abs() > 0.95);
        assert!(corr.between("ET", "EC").unwrap().abs() > 0.95);

        // Reduced + outlier-dropped + log-transformed model (Table II shape).
        let reduced = d.with_predictors(&["AT", "ET"]);
        let fit0 = reduced.fit().unwrap();
        let drop = fit0.worst_outlier();
        let logd = reduced
            .without_observation(drop)
            .map_response("log(M)", f64::log10)
            .unwrap();
        let fit = logd.fit().unwrap();
        assert_eq!(fit.df_residual(), 13); // n=16, p=2 -> 13 DF as Table II
        assert!(fit.r_squared() > 0.9, "R2 = {}", fit.r_squared());
        assert!(fit.coefficient("ET").unwrap().p_value < 0.001);
    }
}
