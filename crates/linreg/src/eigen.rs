//! Symmetric eigendecomposition via cyclic Jacobi rotations.
//!
//! The thermal fast-forward path diagonalises the (symmetrised)
//! conductance system once per network and then advances arbitrary time
//! spans in closed form, so the decomposition itself is cold code: a
//! dense `O(n³)`-per-sweep Jacobi iteration on a handful of nodes is
//! the right tool, exactly as [`crate::solve::lu_solve`] is for the
//! steady-state solves. Jacobi is chosen over QR/Householder because it
//! is short, unconditionally convergent for symmetric input, and
//! delivers orthogonal eigenvectors to machine precision — which the
//! closed-form cooling advance relies on to invert the modal transform
//! without a second solve.

use crate::matrix::Matrix;

/// Eigendecomposition `A = Q Λ Qᵀ` of a symmetric matrix.
///
/// `vectors` holds the orthonormal eigenvectors as **columns**
/// (`vectors[(i, k)]` is component `i` of eigenvector `k`), matching
/// `values[k]`. Eigenpairs are sorted by ascending eigenvalue.
///
/// # Examples
///
/// ```
/// use teem_linreg::{eigen::sym_eigen, Matrix};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let e = sym_eigen(&a);
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), teem_linreg::LinregError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Reconstructs `A` from the decomposition (`Q Λ Qᵀ`) — a test and
    /// diagnostics helper, not a hot path.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += self.vectors[(i, k)] * self.values[k] * self.vectors[(j, k)];
                }
                a[(i, j)] = s;
            }
        }
        a
    }
}

/// Diagonalises a symmetric matrix with the cyclic Jacobi method.
///
/// Asymmetric input is symmetrised first (`(A + Aᵀ)/2`), so callers
/// holding a matrix that is symmetric up to float rounding need not
/// pre-clean it. Convergence is to off-diagonal Frobenius mass below
/// `1e-14 × ‖A‖`; for the ≤ tens-of-nodes networks this crate serves
/// that takes a handful of sweeps.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn sym_eigen(a: &Matrix) -> SymEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eigen needs a square matrix");
    if n == 0 {
        return SymEigen {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        };
    }
    // Working copy, symmetrised.
    let mut m = Matrix::zeros(n, n);
    let mut scale = 0.0_f64;
    for i in 0..n {
        for j in 0..n {
            let v = 0.5 * (a[(i, j)] + a[(j, i)]);
            m[(i, j)] = v;
            scale = scale.max(v.abs());
        }
    }
    let mut q = Matrix::identity(n);
    if scale == 0.0 {
        return SymEigen {
            values: vec![0.0; n],
            vectors: q,
        };
    }
    let tol = 1e-14 * scale;
    // Cyclic sweeps over the strict upper triangle; 50 sweeps is far
    // beyond what quadratic convergence needs at these sizes, and the
    // early-out below fires long before.
    for _ in 0..50 {
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apr = m[(p, r)];
                if apr.abs() <= tol * 1e-2 {
                    continue;
                }
                // Rotation angle zeroing m[p][r]: tan(2θ) = 2a_pr/(a_pp-a_rr).
                let theta = 0.5 * (m[(r, r)] - m[(p, p)]) / apr;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and r.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkr = m[(k, r)];
                    m[(k, p)] = c * mkp - s * mkr;
                    m[(k, r)] = s * mkp + c * mkr;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mrk = m[(r, k)];
                    m[(p, k)] = c * mpk - s * mrk;
                    m[(r, k)] = s * mpk + c * mrk;
                }
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkr = q[(k, r)];
                    q[(k, p)] = c * qkp - s * qkr;
                    q[(k, r)] = s * qkp + c * qkr;
                }
            }
        }
    }
    // Sort eigenpairs ascending (stable order makes downstream caching
    // deterministic).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[(i, i)]
            .partial_cmp(&m[(j, j)])
            .expect("finite eigenvalue")
    });
    let values: Vec<f64> = order.iter().map(|&k| m[(k, k)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, dst)] = q[(i, src)];
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let e = sym_eigen(&a);
        assert_eq!(e.values, vec![1.0, 2.0, 3.0]);
        assert!(e.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn two_by_two_hand_computed() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = sym_eigen(&a);
        assert_close(e.values[0], 1.0, 1e-12);
        assert_close(e.values[1], 3.0, 1e-12);
    }

    #[test]
    fn reconstructs_random_symmetric_matrices() {
        // Deterministic pseudo-random symmetric matrices of several sizes.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [1usize, 2, 4, 7] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let v = next() * 10.0;
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
            }
            let e = sym_eigen(&a);
            assert!(
                e.reconstruct().approx_eq(&a, 1e-9),
                "n={n} reconstruction drifted"
            );
            // Eigenvectors are orthonormal: QᵀQ = I.
            let qtq = e.vectors.transpose().matmul(&e.vectors).unwrap();
            assert!(
                qtq.approx_eq(&Matrix::identity(n), 1e-10),
                "n={n} not orthonormal"
            );
            // Sorted ascending.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn positive_semidefinite_laplacian_has_nonnegative_spectrum() {
        // Graph Laplacian of a path (the shape of C^{-1/2} G C^{-1/2}
        // for a thermal chain with no ambient link): PSD with one zero
        // eigenvalue.
        let a = Matrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ])
        .unwrap();
        let e = sym_eigen(&a);
        assert_close(e.values[0], 0.0, 1e-12);
        assert!(e.values.iter().all(|&l| l > -1e-12));
    }

    #[test]
    fn symmetrises_lightly_asymmetric_input() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0 + 1e-13], vec![1.0, 2.0]]).unwrap();
        let e = sym_eigen(&a);
        assert_close(e.values[0], 1.0, 1e-9);
        assert_close(e.values[1], 3.0, 1e-9);
    }

    #[test]
    fn empty_matrix() {
        let e = sym_eigen(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
    }
}
