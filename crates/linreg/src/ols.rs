//! Ordinary least squares with the full inferential apparatus of R's
//! `summary.lm`: coefficient standard errors, t statistics, two-sided
//! p-values, residual standard error, (adjusted) R², and the overall
//! F-test.
//!
//! This is the engine behind the paper's Table I and Table II, which were
//! produced with `lm()` in R.

use crate::dist::{f_upper_p, t_two_sided_p};
use crate::error::{LinregError, Result};
use crate::matrix::Matrix;
use crate::quantile::FiveNum;
use crate::solve::cholesky;

/// A dataset for regression: named predictor columns plus a named response.
///
/// # Examples
///
/// ```
/// use teem_linreg::Dataset;
///
/// let mut d = Dataset::new("M");
/// d.push_predictor("AT", vec![80.0, 85.0, 90.0, 95.0]);
/// d.push_predictor("ET", vec![30.0, 45.0, 50.0, 70.0]);
/// d.set_response(vec![8.0, 6.0, 4.0, 2.0]);
/// let fit = d.fit()?;
/// assert_eq!(fit.coefficients().len(), 3); // intercept + 2 predictors
/// # Ok::<(), teem_linreg::LinregError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    response_name: String,
    predictor_names: Vec<String>,
    predictors: Vec<Vec<f64>>,
    response: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given response-variable name.
    pub fn new(response_name: impl Into<String>) -> Self {
        Dataset {
            response_name: response_name.into(),
            ..Dataset::default()
        }
    }

    /// Adds a named predictor column.
    pub fn push_predictor(&mut self, name: impl Into<String>, values: Vec<f64>) {
        self.predictor_names.push(name.into());
        self.predictors.push(values);
    }

    /// Sets the response column.
    pub fn set_response(&mut self, values: Vec<f64>) {
        self.response = values;
    }

    /// Name of the response variable.
    pub fn response_name(&self) -> &str {
        &self.response_name
    }

    /// Names of the predictor variables, in order.
    pub fn predictor_names(&self) -> &[String] {
        &self.predictor_names
    }

    /// Borrow of the response column.
    pub fn response(&self) -> &[f64] {
        &self.response
    }

    /// Borrow of predictor column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predictor(&self, i: usize) -> &[f64] {
        &self.predictors[i]
    }

    /// Number of observations (length of the response).
    pub fn n(&self) -> usize {
        self.response.len()
    }

    /// Returns a copy of this dataset keeping only the named predictors.
    /// Unknown names are ignored. Used for the paper's collinearity step
    /// where PT and EC are dropped.
    pub fn with_predictors(&self, keep: &[&str]) -> Dataset {
        let mut d = Dataset::new(self.response_name.clone());
        for (name, vals) in self.predictor_names.iter().zip(self.predictors.iter()) {
            if keep.contains(&name.as_str()) {
                d.push_predictor(name.clone(), vals.clone());
            }
        }
        d.set_response(self.response.clone());
        d
    }

    /// Returns a copy with observation `idx` removed from every column.
    /// Used for outlier deletion between the paper's Table I and Table II.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.n()`.
    pub fn without_observation(&self, idx: usize) -> Dataset {
        assert!(idx < self.n(), "observation {idx} out of range");
        let mut d = Dataset::new(self.response_name.clone());
        for (name, vals) in self.predictor_names.iter().zip(self.predictors.iter()) {
            let mut v = vals.clone();
            v.remove(idx);
            d.push_predictor(name.clone(), v);
        }
        let mut y = self.response.clone();
        y.remove(idx);
        d.set_response(y);
        d
    }

    /// Returns a copy with the response transformed by `f` and renamed.
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::InvalidValue`] if the transform produces a
    /// non-finite value (e.g. `log10` of a non-positive response).
    pub fn map_response(
        &self,
        new_name: impl Into<String>,
        f: impl Fn(f64) -> f64,
    ) -> Result<Dataset> {
        let mut d = Dataset::new(new_name);
        for (name, vals) in self.predictor_names.iter().zip(self.predictors.iter()) {
            d.push_predictor(name.clone(), vals.clone());
        }
        let mut y = Vec::with_capacity(self.response.len());
        for &v in &self.response {
            let t = f(v);
            if !t.is_finite() {
                return Err(LinregError::InvalidValue {
                    what: "transformed response",
                    value: v,
                });
            }
            y.push(t);
        }
        d.set_response(y);
        Ok(d)
    }

    /// Builds the design matrix (leading intercept column of ones followed
    /// by the predictors) and response vector.
    ///
    /// # Errors
    ///
    /// * [`LinregError::DimensionMismatch`] if any column length differs
    ///   from the response length.
    /// * [`LinregError::NotEnoughObservations`] if `n <= p + 1`.
    /// * [`LinregError::InvalidValue`] for non-finite entries.
    pub fn design(&self) -> Result<(Matrix, Vec<f64>)> {
        let n = self.response.len();
        let p = self.predictors.len();
        for col in &self.predictors {
            if col.len() != n {
                return Err(LinregError::DimensionMismatch {
                    op: "dataset design",
                    lhs: (n, 1),
                    rhs: (col.len(), 1),
                });
            }
        }
        if n < p + 2 {
            return Err(LinregError::NotEnoughObservations { n, required: p + 2 });
        }
        let mut x = Matrix::zeros(n, p + 1);
        for r in 0..n {
            x[(r, 0)] = 1.0;
            for c in 0..p {
                let v = self.predictors[c][r];
                if !v.is_finite() {
                    return Err(LinregError::InvalidValue {
                        what: "predictor",
                        value: v,
                    });
                }
                x[(r, c + 1)] = v;
            }
            if !self.response[r].is_finite() {
                return Err(LinregError::InvalidValue {
                    what: "response",
                    value: self.response[r],
                });
            }
        }
        Ok((x, self.response.clone()))
    }

    /// Fits an OLS model with intercept to this dataset.
    ///
    /// # Errors
    ///
    /// Propagates the design-construction errors of [`Dataset::design`] and
    /// [`LinregError::Singular`] for perfectly collinear predictors.
    pub fn fit(&self) -> Result<OlsFit> {
        let (x, y) = self.design()?;
        let mut names = Vec::with_capacity(self.predictor_names.len() + 1);
        names.push("(Intercept)".to_string());
        names.extend(self.predictor_names.iter().cloned());
        OlsFit::from_design(x, y, names, self.response_name.clone())
    }
}

/// One row of the coefficients table: estimate, standard error, t value and
/// two-sided p-value — exactly the columns of R's coefficient summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficient {
    /// Term name (`(Intercept)`, `AT`, `ET`, …).
    pub name: String,
    /// Point estimate of the coefficient.
    pub estimate: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// `estimate / std_error`.
    pub t_value: f64,
    /// Two-sided p-value `Pr(>|t|)` with the fit's residual df.
    pub p_value: f64,
}

impl Coefficient {
    /// R-style significance code: `***`, `**`, `*`, `.` or empty.
    ///
    /// Note the paper's tables print the legend with R's standard
    /// breakpoints (0.001, 0.01, 0.05, 0.1).
    pub fn signif_code(&self) -> &'static str {
        signif_code(self.p_value)
    }
}

/// Maps a p-value to the R significance code.
pub fn signif_code(p: f64) -> &'static str {
    if p < 0.001 {
        "***"
    } else if p < 0.01 {
        "**"
    } else if p < 0.05 {
        "*"
    } else if p < 0.1 {
        "."
    } else {
        ""
    }
}

/// A fitted OLS model, with everything `summary.lm` reports.
#[derive(Debug, Clone)]
pub struct OlsFit {
    response_name: String,
    coefficients: Vec<Coefficient>,
    residuals: Vec<f64>,
    fitted: Vec<f64>,
    leverage: Vec<f64>,
    sigma: f64,
    df_residual: usize,
    r_squared: f64,
    adj_r_squared: f64,
    f_statistic: f64,
    f_df: (usize, usize),
    f_p_value: f64,
    xtx_inv: Matrix,
}

impl OlsFit {
    /// Fits from an explicit design matrix (first column must already be
    /// the intercept if one is wanted) and response vector.
    ///
    /// # Errors
    ///
    /// * [`LinregError::Singular`] when `X^T X` is not invertible.
    /// * [`LinregError::NotEnoughObservations`] when `n <= p`.
    pub fn from_design(
        x: Matrix,
        y: Vec<f64>,
        names: Vec<String>,
        response_name: String,
    ) -> Result<OlsFit> {
        let n = x.rows();
        let p = x.cols(); // includes intercept
        if n <= p {
            return Err(LinregError::NotEnoughObservations { n, required: p + 1 });
        }
        let gram = x.gram();
        let chol = cholesky(&gram)?;
        // beta = (X'X)^-1 X'y
        let xty: Vec<f64> = (0..p)
            .map(|c| (0..n).map(|r| x[(r, c)] * y[r]).sum())
            .collect();
        let beta = chol.solve(&xty)?;
        let xtx_inv = chol.inverse()?;

        let fitted = x.matvec(&beta)?;
        let residuals: Vec<f64> = y.iter().zip(fitted.iter()).map(|(a, b)| a - b).collect();
        let rss: f64 = residuals.iter().map(|e| e * e).sum();
        let ybar = y.iter().sum::<f64>() / n as f64;
        let tss: f64 = y.iter().map(|v| (v - ybar) * (v - ybar)).sum();
        let df_residual = n - p;
        let sigma2 = rss / df_residual as f64;
        let sigma = sigma2.sqrt();

        // Leverage h_i = x_i (X'X)^-1 x_i'
        let mut leverage = Vec::with_capacity(n);
        for r in 0..n {
            let xi = x.row(r);
            let tmp = xtx_inv.matvec(xi)?;
            let h: f64 = xi.iter().zip(tmp.iter()).map(|(a, b)| a * b).sum();
            leverage.push(h);
        }

        let mut coefficients = Vec::with_capacity(p);
        for j in 0..p {
            let se = (sigma2 * xtx_inv[(j, j)]).sqrt();
            let t = if se > 0.0 {
                beta[j] / se
            } else {
                f64::INFINITY
            };
            coefficients.push(Coefficient {
                name: names.get(j).cloned().unwrap_or_else(|| format!("x{j}")),
                estimate: beta[j],
                std_error: se,
                t_value: t,
                p_value: t_two_sided_p(t, df_residual as f64),
            });
        }

        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { f64::NAN };
        let k = p - 1; // predictors excluding intercept
        let adj_r_squared = if tss > 0.0 && n > p {
            1.0 - (rss / df_residual as f64) / (tss / (n - 1) as f64)
        } else {
            f64::NAN
        };
        let (f_statistic, f_p_value) = if k > 0 && rss > 0.0 {
            let f = ((tss - rss) / k as f64) / (rss / df_residual as f64);
            (f, f_upper_p(f, k as f64, df_residual as f64))
        } else {
            (f64::NAN, f64::NAN)
        };

        Ok(OlsFit {
            response_name,
            coefficients,
            residuals,
            fitted,
            leverage,
            sigma,
            df_residual,
            r_squared,
            adj_r_squared,
            f_statistic,
            f_df: (k, df_residual),
            f_p_value,
            xtx_inv,
        })
    }

    /// Name of the response variable the model was fitted to.
    pub fn response_name(&self) -> &str {
        &self.response_name
    }

    /// Coefficient table (intercept first).
    pub fn coefficients(&self) -> &[Coefficient] {
        &self.coefficients
    }

    /// Looks up a coefficient by term name.
    pub fn coefficient(&self, name: &str) -> Option<&Coefficient> {
        self.coefficients.iter().find(|c| c.name == name)
    }

    /// Raw residuals `y - fitted`.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Fitted values.
    pub fn fitted(&self) -> &[f64] {
        &self.fitted
    }

    /// Hat-matrix diagonal (leverage) per observation.
    pub fn leverage(&self) -> &[f64] {
        &self.leverage
    }

    /// Residual standard error (R's `sigma`).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Residual degrees of freedom `n - p - 1` (with `p` predictors).
    pub fn df_residual(&self) -> usize {
        self.df_residual
    }

    /// Multiple R-squared.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Adjusted R-squared.
    pub fn adj_r_squared(&self) -> f64 {
        self.adj_r_squared
    }

    /// Overall F statistic and its degrees of freedom `(k, n - p - 1)`.
    pub fn f_statistic(&self) -> (f64, usize, usize) {
        (self.f_statistic, self.f_df.0, self.f_df.1)
    }

    /// p-value of the overall F-test.
    pub fn f_p_value(&self) -> f64 {
        self.f_p_value
    }

    /// Number of observations the model was fitted on.
    pub fn n(&self) -> usize {
        self.residuals.len()
    }

    /// Five-number summary of the residuals (the `Residuals:` block).
    pub fn residual_five_num(&self) -> FiveNum {
        FiveNum::of(&self.residuals).expect("fit guarantees at least one observation")
    }

    /// Internally studentised residuals `e_i / (sigma * sqrt(1 - h_i))`.
    pub fn studentized_residuals(&self) -> Vec<f64> {
        self.residuals
            .iter()
            .zip(self.leverage.iter())
            .map(|(e, h)| {
                let denom = self.sigma * (1.0 - h).max(1e-12).sqrt();
                e / denom
            })
            .collect()
    }

    /// Index of the observation with the largest |studentised residual| —
    /// the outlier the paper removes before the log-transformed refit.
    pub fn worst_outlier(&self) -> usize {
        self.studentized_residuals()
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.abs()
                    .partial_cmp(&b.1.abs())
                    .expect("non-finite studentised residual")
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Predicts the response for a new predictor vector (without intercept
    /// — it is added internally).
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::DimensionMismatch`] if `xs.len()` differs
    /// from the number of predictors.
    pub fn predict(&self, xs: &[f64]) -> Result<f64> {
        if xs.len() + 1 != self.coefficients.len() {
            return Err(LinregError::DimensionMismatch {
                op: "predict",
                lhs: (self.coefficients.len() - 1, 1),
                rhs: (xs.len(), 1),
            });
        }
        let mut y = self.coefficients[0].estimate;
        for (c, x) in self.coefficients[1..].iter().zip(xs.iter()) {
            y += c.estimate * x;
        }
        Ok(y)
    }

    /// Coefficient covariance scale matrix `(X^T X)^{-1}` (multiply by
    /// `sigma^2` for the covariance).
    pub fn xtx_inverse(&self) -> &Matrix {
        &self.xtx_inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 2 + 3 x1 - 0.5 x2, exact.
    fn exact_dataset() -> Dataset {
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x2 = vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let y: Vec<f64> = x1
            .iter()
            .zip(x2.iter())
            .map(|(a, b)| 2.0 + 3.0 * a - 0.5 * b)
            .collect();
        let mut d = Dataset::new("y");
        d.push_predictor("x1", x1);
        d.push_predictor("x2", x2);
        d.set_response(y);
        d
    }

    #[test]
    fn recovers_exact_coefficients() {
        let fit = exact_dataset().fit().unwrap();
        let c = fit.coefficients();
        assert!((c[0].estimate - 2.0).abs() < 1e-10);
        assert!((c[1].estimate - 3.0).abs() < 1e-10);
        assert!((c[2].estimate + 0.5).abs() < 1e-10);
        assert!(fit.r_squared() > 0.999_999);
        assert!(fit.residuals().iter().all(|e| e.abs() < 1e-9));
    }

    #[test]
    fn simple_regression_matches_closed_form() {
        // y = a + b x fitted by OLS has closed-form slope/intercept.
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y = vec![2.1, 3.9, 6.2, 7.8, 10.1];
        let n = x.len() as f64;
        let sx: f64 = x.iter().sum();
        let sy: f64 = y.iter().sum();
        let sxx: f64 = x.iter().map(|v| v * v).sum();
        let sxy: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;

        let mut d = Dataset::new("y");
        d.push_predictor("x", x);
        d.set_response(y);
        let fit = d.fit().unwrap();
        assert!((fit.coefficients()[0].estimate - intercept).abs() < 1e-10);
        assert!((fit.coefficients()[1].estimate - slope).abs() < 1e-10);
    }

    #[test]
    fn matches_closed_form_reference_fit() {
        // Reference derived by hand from the OLS closed forms for
        //   x = 1..8, y = (2.0, 4.1, 5.9, 8.3, 9.8, 12.2, 13.9, 16.1):
        // slope = 672.4/336, intercept = 0.0321428571,
        // sigma = 0.1819756 on 6 df, se_b = sigma/sqrt(42) = 0.0280795,
        // se_a = sigma*sqrt(1/8 + 4.5^2/42) = 0.1417942,
        // R^2 = 0.9988201, F = 5079.3 on 1 and 6 DF.
        let mut d = Dataset::new("y");
        d.push_predictor("x", (1..=8).map(f64::from).collect());
        d.set_response(vec![2.0, 4.1, 5.9, 8.3, 9.8, 12.2, 13.9, 16.1]);
        let fit = d.fit().unwrap();
        let c = fit.coefficients();
        assert!(
            (c[0].estimate - 0.032_142_857_1).abs() < 1e-9,
            "{}",
            c[0].estimate
        );
        assert!(
            (c[1].estimate - 672.4 / 336.0).abs() < 1e-9,
            "{}",
            c[1].estimate
        );
        assert!(
            (c[0].std_error - 0.141_794_2).abs() < 1e-6,
            "{}",
            c[0].std_error
        );
        assert!(
            (c[1].std_error - 0.028_079_5).abs() < 1e-6,
            "{}",
            c[1].std_error
        );
        assert!((fit.sigma() - 0.181_975_6).abs() < 1e-6, "{}", fit.sigma());
        assert_eq!(fit.df_residual(), 6);
        assert!((fit.r_squared() - 0.998_820_1).abs() < 1e-6);
        let (f, d1, d2) = fit.f_statistic();
        assert_eq!((d1, d2), (1, 6));
        assert!((f / 5079.3 - 1.0).abs() < 1e-4, "F = {f}");
    }

    #[test]
    fn p_values_flag_irrelevant_predictor() {
        // y depends on x1 only; noise predictor x2 should be insignificant.
        let x1: Vec<f64> = (0..20).map(f64::from).collect();
        let x2: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y: Vec<f64> = x1
            .iter()
            .enumerate()
            .map(|(i, a)| 1.0 + 2.0 * a + if i % 3 == 0 { 0.05 } else { -0.02 })
            .collect();
        let mut d = Dataset::new("y");
        d.push_predictor("x1", x1);
        d.push_predictor("x2", x2);
        d.set_response(y);
        let fit = d.fit().unwrap();
        assert!(fit.coefficient("x1").unwrap().p_value < 1e-10);
        assert!(fit.coefficient("x2").unwrap().p_value > 0.05);
    }

    #[test]
    fn collinear_predictors_are_singular() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x2: Vec<f64> = x1.iter().map(|v| 2.0 * v).collect();
        let mut d = Dataset::new("y");
        d.push_predictor("x1", x1);
        d.push_predictor("x2", x2);
        d.set_response(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(d.fit().unwrap_err(), LinregError::Singular);
    }

    #[test]
    fn too_few_observations_rejected() {
        let mut d = Dataset::new("y");
        d.push_predictor("x1", vec![1.0, 2.0]);
        d.push_predictor("x2", vec![2.0, 1.0]);
        d.set_response(vec![1.0, 2.0]);
        assert!(matches!(
            d.fit(),
            Err(LinregError::NotEnoughObservations { .. })
        ));
    }

    #[test]
    fn without_observation_removes_row_everywhere() {
        let d = exact_dataset();
        let d2 = d.without_observation(2);
        assert_eq!(d2.n(), d.n() - 1);
        assert_eq!(d2.predictor(0)[2], d.predictor(0)[3]);
        assert_eq!(d2.response()[2], d.response()[3]);
    }

    #[test]
    fn with_predictors_subsets_and_preserves_order() {
        let d = exact_dataset();
        let d2 = d.with_predictors(&["x2"]);
        assert_eq!(d2.predictor_names(), &["x2".to_string()]);
        assert_eq!(d2.predictor(0), d.predictor(1));
    }

    #[test]
    fn map_response_log10_and_domain_error() {
        let mut d = Dataset::new("y");
        d.push_predictor("x", vec![1.0, 2.0, 3.0, 4.0]);
        d.set_response(vec![10.0, 100.0, 1000.0, 10_000.0]);
        let dl = d.map_response("log10(y)", f64::log10).unwrap();
        assert_eq!(dl.response(), &[1.0, 2.0, 3.0, 4.0]);

        let mut bad = Dataset::new("y");
        bad.push_predictor("x", vec![1.0, 2.0, 3.0, 4.0]);
        bad.set_response(vec![1.0, -1.0, 2.0, 3.0]);
        assert!(matches!(
            bad.map_response("log10(y)", f64::log10),
            Err(LinregError::InvalidValue { .. })
        ));
    }

    #[test]
    fn leverage_sums_to_p() {
        // Known property: trace(H) = number of coefficients.
        let fit = exact_dataset().fit().unwrap();
        let sum: f64 = fit.leverage().iter().sum();
        assert!((sum - 3.0).abs() < 1e-8, "trace(H) = {sum}");
    }

    #[test]
    fn worst_outlier_finds_planted_outlier() {
        let x: Vec<f64> = (0..15).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| 1.0 + 2.0 * v + 0.01 * (v % 2.0)).collect();
        y[7] += 25.0; // plant an outlier
        let mut d = Dataset::new("y");
        d.push_predictor("x", x);
        d.set_response(y);
        let fit = d.fit().unwrap();
        assert_eq!(fit.worst_outlier(), 7);
    }

    #[test]
    fn predict_applies_coefficients() {
        let fit = exact_dataset().fit().unwrap();
        let y = fit.predict(&[10.0, 4.0]).unwrap();
        assert!((y - (2.0 + 30.0 - 2.0)).abs() < 1e-8);
        assert!(fit.predict(&[1.0]).is_err());
    }
}
