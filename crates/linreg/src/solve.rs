//! Dense linear solvers: Cholesky for the SPD normal equations and LU with
//! partial pivoting as the general fallback / cross-check.

use crate::error::{LinregError, Result};
use crate::matrix::Matrix;

/// Cholesky factor of a symmetric positive-definite matrix.
///
/// Produced by [`cholesky`]; solves `A x = b` in `O(n^2)` per right-hand
/// side once the `O(n^3)` factorisation is done.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor `L` with `A = L L^T`.
    l: Matrix,
}

/// Computes the Cholesky factorisation of a symmetric positive-definite
/// matrix.
///
/// # Errors
///
/// Returns [`LinregError::Singular`] when the matrix is not positive
/// definite (within a small tolerance), which for OLS means the predictors
/// are perfectly collinear.
///
/// # Examples
///
/// ```
/// use teem_linreg::{Matrix, solve::cholesky};
///
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]])?;
/// let ch = cholesky(&a)?;
/// let x = ch.solve(&[2.0, 1.0])?;
/// assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), teem_linreg::LinregError>(())
/// ```
pub fn cholesky(a: &Matrix) -> Result<Cholesky> {
    if a.rows() != a.cols() {
        return Err(LinregError::DimensionMismatch {
            op: "cholesky",
            lhs: (a.rows(), a.cols()),
            rhs: (a.rows(), a.rows()),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    // Tolerance scaled by the largest diagonal entry; catches numerically
    // semi-definite systems from collinear predictors.
    let scale = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs()));
    let tol = scale * 1e-12 + f64::MIN_POSITIVE;
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= tol {
            return Err(LinregError::Singular);
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(Cholesky { l })
}

impl Cholesky {
    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinregError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            #[allow(clippy::needless_range_loop)] // index form mirrors the maths
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back substitution: L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            #[allow(clippy::needless_range_loop)] // index form mirrors the maths
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A^{-1}` column by column. Used for coefficient covariance
    /// `(X^T X)^{-1}` in OLS inference.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let x = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Solves `A x = b` by LU decomposition with partial pivoting.
///
/// General-purpose fallback used in tests to cross-check [`cholesky`] and
/// available for non-symmetric systems.
///
/// # Errors
///
/// Returns [`LinregError::Singular`] for (numerically) singular `A` and
/// [`LinregError::DimensionMismatch`] for shape errors.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != a.cols() {
        return Err(LinregError::DimensionMismatch {
            op: "lu_solve",
            lhs: (a.rows(), a.cols()),
            rhs: (a.rows(), a.rows()),
        });
    }
    let n = a.rows();
    if b.len() != n {
        return Err(LinregError::DimensionMismatch {
            op: "lu_solve rhs",
            lhs: (n, n),
            rhs: (b.len(), 1),
        });
    }
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();
    let scale = lu.max_abs();
    let tol = scale * 1e-13 + f64::MIN_POSITIVE;

    for k in 0..n {
        // Partial pivot
        let mut piv = k;
        let mut max = lu[(k, k)].abs();
        for i in (k + 1)..n {
            if lu[(i, k)].abs() > max {
                max = lu[(i, k)].abs();
                piv = i;
            }
        }
        if max <= tol {
            return Err(LinregError::Singular);
        }
        if piv != k {
            for c in 0..n {
                let tmp = lu[(k, c)];
                lu[(k, c)] = lu[(piv, c)];
                lu[(piv, c)] = tmp;
            }
            x.swap(k, piv);
            perm.swap(k, piv);
        }
        for i in (k + 1)..n {
            let f = lu[(i, k)] / lu[(k, k)];
            lu[(i, k)] = f;
            for c in (k + 1)..n {
                let v = lu[(k, c)];
                lu[(i, c)] -= f * v;
            }
            x[i] -= f * x[k];
        }
    }
    // Back substitution on U
    for i in (0..n).rev() {
        let mut s = x[i];
        for c in (i + 1)..n {
            s -= lu[(i, c)] * x[c];
        }
        x[i] = s / lu[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let a = spd3();
        let ch = cholesky(&a).unwrap();
        let l = ch.factor();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-12));
    }

    #[test]
    fn cholesky_solve_agrees_with_lu() {
        let a = spd3();
        let b = [1.0, 2.0, 3.0];
        let x1 = cholesky(&a).unwrap().solve(&b).unwrap();
        let x2 = lu_solve(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert_eq!(cholesky(&a).unwrap_err(), LinregError::Singular);
    }

    #[test]
    fn cholesky_rejects_collinear_gram() {
        // X with a duplicated column -> X'X singular.
        let x = Matrix::from_rows(&[
            vec![1.0, 1.0, 2.0],
            vec![1.0, 2.0, 4.0],
            vec![1.0, 3.0, 6.0],
            vec![1.0, 4.0, 8.0],
        ])
        .unwrap();
        assert_eq!(cholesky(&x.gram()).unwrap_err(), LinregError::Singular);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let inv = cholesky(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn lu_handles_permutation() {
        // Zero pivot in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(
            lu_solve(&a, &[1.0, 2.0]).unwrap_err(),
            LinregError::Singular
        );
    }
}
