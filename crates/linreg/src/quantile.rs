//! Sample quantiles (R's default "type 7" definition) used for the
//! `Residuals:` block of an R-style model summary.

/// Computes the sample quantile at probability `p` using linear
/// interpolation of the order statistics (R's `quantile(type = 7)`).
///
/// Returns `None` for an empty sample or `p` outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use teem_linreg::quantile::quantile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in quantile"));
    Some(quantile_sorted(&sorted, p))
}

/// Like [`quantile`] but assumes `sorted` is already ascending. Useful when
/// extracting several quantiles from one sample.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// The five-number summary R prints for residuals: min, 1Q, median, 3Q, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl FiveNum {
    /// Computes the five-number summary of a sample.
    ///
    /// Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<FiveNum> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in five-num"));
        Some(FiveNum {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_sample() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
    }

    #[test]
    fn quartiles_match_r_type7() {
        // R: quantile(c(1,2,3,4,5,6,7,8), c(.25,.75)) -> 2.75, 6.25
        let xs: Vec<f64> = (1..=8).map(f64::from).collect();
        assert!((quantile(&xs, 0.25).unwrap() - 2.75).abs() < 1e-12);
        assert!((quantile(&xs, 0.75).unwrap() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_out_of_range() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn five_num_ordering() {
        let f = FiveNum::of(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
    }

    #[test]
    fn five_num_empty() {
        assert_eq!(FiveNum::of(&[]), None);
    }

    #[test]
    fn single_element_sample() {
        let f = FiveNum::of(&[7.0]).unwrap();
        assert_eq!(f.min, 7.0);
        assert_eq!(f.q1, 7.0);
        assert_eq!(f.max, 7.0);
    }
}
