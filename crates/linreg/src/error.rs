//! Error types for the linear-regression substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or fitting linear models.
///
/// # Examples
///
/// ```
/// use teem_linreg::{Matrix, LinregError};
///
/// let bad = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
/// assert!(matches!(bad, Err(LinregError::RaggedRows { .. })));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LinregError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand `(rows, cols)`.
        lhs: (usize, usize),
        /// Dimensions of the right operand `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// Rows of differing lengths were supplied to a matrix constructor.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Length of the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// The normal-equations matrix was singular (perfectly collinear
    /// predictors or fewer observations than coefficients).
    Singular,
    /// Fewer observations than required for the requested fit.
    NotEnoughObservations {
        /// Observations supplied.
        n: usize,
        /// Minimum required (coefficients + 1).
        required: usize,
    },
    /// A response or predictor value was non-finite, or a transform was
    /// applied to a value outside its domain (e.g. `log10` of a
    /// non-positive response).
    InvalidValue {
        /// Description of what was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for LinregError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinregError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinregError::RaggedRows {
                expected,
                found,
                row,
            } => write!(
                f,
                "ragged rows: row {row} has {found} entries, expected {expected}"
            ),
            LinregError::Singular => {
                write!(f, "singular system: predictors are perfectly collinear")
            }
            LinregError::NotEnoughObservations { n, required } => write!(
                f,
                "not enough observations: {n} supplied, at least {required} required"
            ),
            LinregError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
        }
    }
}

impl Error for LinregError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinregError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinregError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));

        let e = LinregError::NotEnoughObservations { n: 3, required: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));

        let e = LinregError::InvalidValue {
            what: "log10 response",
            value: -1.0,
        };
        assert!(e.to_string().contains("log10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinregError>();
    }
}
