//! R-style textual model summaries, matching the layout of the paper's
//! Table I and Table II (which are verbatim `summary.lm` output).

use crate::ols::OlsFit;
use std::fmt;

/// Wrapper that formats an [`OlsFit`] like R's `summary.lm`.
///
/// # Examples
///
/// ```
/// use teem_linreg::{Dataset, summary::Summary};
///
/// let mut d = Dataset::new("y");
/// d.push_predictor("x", (1..=8).map(f64::from).collect());
/// d.set_response(vec![2.0, 4.1, 5.9, 8.3, 9.8, 12.2, 13.9, 16.1]);
/// let fit = d.fit()?;
/// let text = Summary::new(&fit).to_string();
/// assert!(text.contains("Residuals:"));
/// assert!(text.contains("Multiple R-squared"));
/// # Ok::<(), teem_linreg::LinregError>(())
/// ```
#[derive(Debug)]
pub struct Summary<'a> {
    fit: &'a OlsFit,
}

impl<'a> Summary<'a> {
    /// Creates a summary formatter for a fit.
    pub fn new(fit: &'a OlsFit) -> Self {
        Summary { fit }
    }
}

/// Formats a p-value the way R does: scientific notation below 1e-4,
/// fixed-point otherwise, `< 2e-16` for underflow.
pub fn format_p_value(p: f64) -> String {
    if p.is_nan() {
        return "NA".to_string();
    }
    if p < 2e-16 {
        return "< 2e-16".to_string();
    }
    if p < 1e-4 {
        format!("{p:.3e}")
    } else {
        format!("{p:.5}")
    }
}

impl fmt::Display for Summary<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fit = self.fit;
        let five = fit.residual_five_num();
        writeln!(f, "Residuals:")?;
        writeln!(
            f,
            "{:>9} {:>9} {:>9} {:>9} {:>9}",
            "Min", "1Q", "Median", "3Q", "Max"
        )?;
        writeln!(
            f,
            "{:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            five.min, five.q1, five.median, five.q3, five.max
        )?;
        writeln!(f)?;
        writeln!(f, "Coefficients:")?;
        let name_w = fit
            .coefficients()
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(12)
            .max(11);
        writeln!(
            f,
            "{:<name_w$} {:>12} {:>12} {:>8} {:>10}",
            "", "Estimate", "Std. Error", "t value", "Pr(>|t|)"
        )?;
        for c in fit.coefficients() {
            writeln!(
                f,
                "{:<name_w$} {:>12.6} {:>12.6} {:>8.3} {:>10} {}",
                c.name,
                c.estimate,
                c.std_error,
                c.t_value,
                format_p_value(c.p_value),
                c.signif_code(),
            )?;
        }
        writeln!(f, "---")?;
        writeln!(
            f,
            "Signif. codes:  0 '***' 0.001 '**' 0.01 '*' 0.05 '.' 0.1 ' ' 1"
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "Residual standard error: {:.4} on {} degrees of freedom",
            fit.sigma(),
            fit.df_residual()
        )?;
        writeln!(
            f,
            "Multiple R-squared: {:.4}, Adjusted R-squared: {:.4}",
            fit.r_squared(),
            fit.adj_r_squared()
        )?;
        let (fs, d1, d2) = fit.f_statistic();
        writeln!(
            f,
            "F-statistic: {:.4} on {} and {} DF, p-value: {}",
            fs,
            d1,
            d2,
            format_p_value(fit.f_p_value())
        )
    }
}

/// One line of a compact model comparison (used when printing several fits
/// side by side, e.g. before/after the paper's log transform).
pub fn one_line(fit: &OlsFit) -> String {
    let (fs, d1, d2) = fit.f_statistic();
    format!(
        "{}: R2={:.4} adjR2={:.4} F={:.2} on {} and {} DF (p={}) sigma={:.4}",
        fit.response_name(),
        fit.r_squared(),
        fit.adj_r_squared(),
        fs,
        d1,
        d2,
        format_p_value(fit.f_p_value()),
        fit.sigma()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ols::{signif_code, Dataset};

    fn sample_fit() -> OlsFit {
        let mut d = Dataset::new("y");
        d.push_predictor("x", (1..=10).map(f64::from).collect());
        d.set_response(vec![1.2, 2.1, 2.9, 4.3, 4.8, 6.2, 7.1, 7.9, 9.2, 9.8]);
        d.fit().unwrap()
    }

    #[test]
    fn summary_contains_all_sections() {
        let fit = sample_fit();
        let s = Summary::new(&fit).to_string();
        for needle in [
            "Residuals:",
            "Coefficients:",
            "(Intercept)",
            "Pr(>|t|)",
            "Signif. codes",
            "Residual standard error",
            "Multiple R-squared",
            "F-statistic",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn signif_codes_cover_all_bands() {
        assert_eq!(signif_code(0.0001), "***");
        assert_eq!(signif_code(0.005), "**");
        assert_eq!(signif_code(0.03), "*");
        assert_eq!(signif_code(0.07), ".");
        assert_eq!(signif_code(0.5), "");
    }

    #[test]
    fn p_value_formatting() {
        assert_eq!(format_p_value(1e-17), "< 2e-16");
        assert!(format_p_value(2.4e-5).contains('e'));
        assert_eq!(format_p_value(0.01727), "0.01727");
        assert_eq!(format_p_value(f64::NAN), "NA");
    }

    #[test]
    fn one_line_mentions_key_stats() {
        let fit = sample_fit();
        let line = one_line(&fit);
        assert!(line.contains("R2="));
        assert!(line.contains("F="));
        assert!(line.contains("DF"));
    }
}
