//! Statistical distributions needed for OLS inference: Student-t and F
//! p-values via the regularised incomplete beta function, plus the normal
//! CDF.
//!
//! The implementations follow the classic continued-fraction evaluation
//! (Numerical Recipes §6.4) and a Lanczos log-gamma, which are accurate to
//! well beyond the 4–5 significant digits that an R-style `summary()`
//! reports.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for positive arguments.
///
/// # Examples
///
/// ```
/// use teem_linreg::dist::ln_gamma;
/// // Gamma(5) = 24
/// assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula for small/negative arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta function `I_x(a, b)`.
///
/// Evaluated with the Lentz continued fraction; converges for all
/// `0 <= x <= 1`, `a, b > 0`.
///
/// # Panics
///
/// Panics in debug builds if `x` is outside `[0, 1]` or `a`/`b` are not
/// positive. In release builds out-of-domain inputs are clamped.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "inc_beta: a={a} b={b} must be positive");
    debug_assert!((0.0..=1.0).contains(&x), "inc_beta: x={x} out of [0,1]");
    let x = x.clamp(0.0, 1.0);
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fastest for x <= (a+1)/(a+b+2);
    // otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a). The `<=` is
    // load-bearing: at exactly the threshold (e.g. a == b, x == 1/2) a
    // strict `<` would recurse forever.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - inc_beta(b, a, 1.0 - x)
    }
}

/// Continued-fraction kernel for [`inc_beta`] (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value for a Student-t statistic with `df` degrees of freedom.
///
/// This is `P(|T| >= |t|)`, the quantity R prints as `Pr(>|t|)`.
///
/// # Examples
///
/// ```
/// use teem_linreg::dist::t_two_sided_p;
/// // t = 0 is maximally insignificant.
/// assert!((t_two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-12);
/// // Large |t| is highly significant.
/// assert!(t_two_sided_p(8.0, 10.0) < 1e-4);
/// ```
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    if df <= 0.0 {
        return f64::NAN;
    }
    inc_beta(df / 2.0, 0.5, df / (df + t * t))
}

/// CDF of the Student-t distribution.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    let p = 0.5 * t_two_sided_p(t, df);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Upper-tail p-value for an F statistic with `(d1, d2)` degrees of freedom.
///
/// This is `P(F >= f)`, the model p-value an R summary reports for the
/// overall regression F-test.
///
/// # Examples
///
/// ```
/// use teem_linreg::dist::f_upper_p;
/// // F = 1 with symmetric df sits in the middle of the distribution.
/// let p = f_upper_p(1.0, 5.0, 5.0);
/// assert!((p - 0.5).abs() < 1e-10);
/// ```
pub fn f_upper_p(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    if !f.is_finite() {
        return 0.0;
    }
    inc_beta(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f))
}

/// CDF of the F distribution.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    1.0 - f_upper_p(f, d1, d2)
}

/// Standard normal CDF via `erfc` (Abramowitz & Stegun 7.1.26-style rational
/// approximation refined with one Newton step; max abs error ≈ 1e-12).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function.
///
/// Rational Chebyshev approximation from Numerical Recipes (`erfcc`),
/// accurate to ~1.2e-7 everywhere — more than enough for the 4-digit
/// p-values an R-style summary reports.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..10 {
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "Gamma({n})");
            fact *= n as f64;
        }
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 5.0, 0.7), (10.0, 0.5, 0.2)] {
            let lhs = inc_beta(a, b, x);
            let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
        // I_x(1,1) = x (uniform)
        assert!((inc_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_pvalues_match_known_quantiles() {
        // From t tables: P(|T| > 2.228) = 0.05 at df = 10.
        let p = t_two_sided_p(2.228, 10.0);
        assert!((p - 0.05).abs() < 5e-4, "p = {p}");
        // P(|T| > 2.179) = 0.05 at df = 12.
        let p = t_two_sided_p(2.179, 12.0);
        assert!((p - 0.05).abs() < 5e-4, "p = {p}");
        // Monotone decreasing in |t|.
        assert!(t_two_sided_p(1.0, 12.0) > t_two_sided_p(2.0, 12.0));
        // Symmetric in t.
        assert_eq!(t_two_sided_p(1.5, 8.0), t_two_sided_p(-1.5, 8.0));
    }

    #[test]
    fn t_cdf_is_monotone_and_centered() {
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        assert!(t_cdf(1.0, 7.0) > t_cdf(0.5, 7.0));
        assert!(t_cdf(-3.0, 7.0) < 0.05);
    }

    #[test]
    fn f_pvalues_match_known_quantiles() {
        // From F tables: F(0.05; 4, 12) = 3.259.
        let p = f_upper_p(3.259, 4.0, 12.0);
        assert!((p - 0.05).abs() < 1e-3, "p = {p}");
        // F(0.05; 2, 13) = 3.806.
        let p = f_upper_p(3.806, 2.0, 13.0);
        assert!((p - 0.05).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn f_pvalue_for_paper_statistics() {
        // Table I: F = 20.98 on 4 and 12 DF, p-value = 2.396e-05.
        let p = f_upper_p(20.98, 4.0, 12.0);
        assert!((p / 2.396e-5 - 1.0).abs() < 0.02, "p = {p:e}");
        // Table II: F = 76.71 on 2 and 13 DF, p-value = 6.348e-08.
        let p = f_upper_p(76.71, 2.0, 13.0);
        assert!((p / 6.348e-8 - 1.0).abs() < 0.02, "p = {p:e}");
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.0, 0.3, 1.0, 2.5] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-6, "x={x}");
        }
    }
}
