//! Pearson correlations and scatter-matrix data — the machinery behind the
//! paper's Fig. 3 (matrix scatterplot of response and predictor variables)
//! and its collinearity discussion (AT↔PT and ET↔EC are strongly
//! correlated, which masks PT and EC in the full model).

use crate::error::{LinregError, Result};
use crate::ols::Dataset;
use std::fmt;

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` when lengths differ, fewer than two points are supplied,
/// or either sample has zero variance.
///
/// # Examples
///
/// ```
/// use teem_linreg::corr::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Named correlation matrix over the columns of a [`Dataset`] (response
/// first, then predictors) — the numeric backbone of a scatterplot matrix.
#[derive(Debug, Clone)]
pub struct CorrelationMatrix {
    names: Vec<String>,
    /// Row-major `names.len() x names.len()` correlation entries.
    values: Vec<f64>,
}

impl CorrelationMatrix {
    /// Computes the correlation matrix of a dataset's columns.
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::NotEnoughObservations`] for fewer than two
    /// observations and [`LinregError::InvalidValue`] when a column has
    /// zero variance (correlation undefined).
    pub fn of(data: &Dataset) -> Result<CorrelationMatrix> {
        if data.n() < 2 {
            return Err(LinregError::NotEnoughObservations {
                n: data.n(),
                required: 2,
            });
        }
        let mut names = vec![data.response_name().to_string()];
        names.extend(data.predictor_names().iter().cloned());
        let k = names.len();
        let col = |i: usize| -> &[f64] {
            if i == 0 {
                data.response()
            } else {
                data.predictor(i - 1)
            }
        };
        let mut values = vec![0.0; k * k];
        for i in 0..k {
            for j in i..k {
                let r = if i == j {
                    1.0
                } else {
                    pearson(col(i), col(j)).ok_or(LinregError::InvalidValue {
                        what: "zero-variance column in correlation",
                        value: 0.0,
                    })?
                };
                values[i * k + j] = r;
                values[j * k + i] = r;
            }
        }
        Ok(CorrelationMatrix { names, values })
    }

    /// Column/row names, response first.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Correlation between columns `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        let k = self.names.len();
        assert!(i < k && j < k, "correlation index out of range");
        self.values[i * k + j]
    }

    /// Correlation looked up by column names.
    pub fn between(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == a)?;
        let j = self.names.iter().position(|n| n == b)?;
        Some(self.at(i, j))
    }

    /// Pairs of distinct columns with `|r| >= threshold` — the collinear
    /// pairs the paper's Fig. 3 reveals (AT↔PT, ET↔EC).
    pub fn strongly_correlated(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let k = self.names.len();
        let mut out = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                let r = self.at(i, j);
                if r.abs() >= threshold {
                    out.push((self.names[i].clone(), self.names[j].clone(), r));
                }
            }
        }
        out
    }
}

impl fmt::Display for CorrelationMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.names.iter().map(|n| n.len()).max().unwrap_or(4).max(6);
        write!(f, "{:w$}", "")?;
        for n in &self.names {
            write!(f, " {n:>w$}")?;
        }
        writeln!(f)?;
        let k = self.names.len();
        for i in 0..k {
            write!(f, "{:<w$}", self.names[i])?;
            for j in 0..k {
                write!(f, " {:>w$.3}", self.at(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Emits the dataset as CSV (response first), ready for an external
/// scatter-matrix plot of Fig. 3.
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(data.response_name());
    for n in data.predictor_names() {
        out.push(',');
        out.push_str(n);
    }
    out.push('\n');
    for r in 0..data.n() {
        out.push_str(&format!("{}", data.response()[r]));
        for c in 0..data.predictor_names().len() {
            out.push_str(&format!(",{}", data.predictor(c)[r]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new("M");
        d.push_predictor("AT", vec![84.0, 86.0, 88.0, 90.0, 92.0, 94.0]);
        // PT tracks AT closely (collinear pair).
        d.push_predictor("PT", vec![86.1, 88.0, 89.9, 92.2, 94.0, 96.1]);
        d.push_predictor("ET", vec![55.0, 48.0, 41.0, 35.0, 30.0, 26.0]);
        d.set_response(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        d
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[5.0, 5.0]), None);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = CorrelationMatrix::of(&sample()).unwrap();
        let k = m.names().len();
        for i in 0..k {
            assert_eq!(m.at(i, i), 1.0);
            for j in 0..k {
                assert_eq!(m.at(i, j), m.at(j, i));
            }
        }
    }

    #[test]
    fn finds_collinear_pair() {
        let m = CorrelationMatrix::of(&sample()).unwrap();
        let strong = m.strongly_correlated(0.99);
        assert!(
            strong
                .iter()
                .any(|(a, b, _)| (a == "AT" && b == "PT") || (a == "PT" && b == "AT")),
            "expected AT~PT in {strong:?}"
        );
        let r = m.between("AT", "PT").unwrap();
        assert!(r > 0.99);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("M,AT,PT,ET"));
        assert_eq!(csv.lines().count(), 7);
    }

    #[test]
    fn display_prints_grid() {
        let m = CorrelationMatrix::of(&sample()).unwrap();
        let s = m.to_string();
        assert!(s.contains("AT"));
        assert!(s.contains("1.000"));
    }
}
