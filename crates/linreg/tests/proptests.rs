//! Property-based tests for the regression substrate: invariants that must
//! hold for *any* well-conditioned input, not just hand-picked examples.

use proptest::prelude::*;
use teem_linreg::dist::{f_upper_p, inc_beta, t_two_sided_p};
use teem_linreg::quantile::{quantile, FiveNum};
use teem_linreg::solve::{cholesky, lu_solve};
use teem_linreg::{Dataset, Matrix};

/// Strategy: a small well-conditioned SPD matrix built as `A = B B^T + c I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, n * n).prop_map(move |vals| {
        let mut b = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                b[(r, c)] = vals[r * n + c];
            }
        }
        let mut a = b.matmul(&b.transpose()).expect("square matmul");
        for i in 0..n {
            a[(i, i)] += 1.0; // guarantee positive definiteness
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cholesky_solves_spd_systems(a in spd_matrix(4), b in proptest::collection::vec(-10.0..10.0f64, 4)) {
        let ch = cholesky(&a).expect("SPD by construction");
        let x = ch.solve(&b).expect("dimensions match");
        // Check A x = b.
        let ax = a.matvec(&x).expect("dimensions match");
        for (l, r) in ax.iter().zip(b.iter()) {
            prop_assert!((l - r).abs() < 1e-6, "Ax={l} b={r}");
        }
    }

    #[test]
    fn cholesky_and_lu_agree(a in spd_matrix(3), b in proptest::collection::vec(-5.0..5.0f64, 3)) {
        let x1 = cholesky(&a).expect("SPD").solve(&b).expect("solve");
        let x2 = lu_solve(&a, &b).expect("solve");
        for (l, r) in x1.iter().zip(x2.iter()) {
            prop_assert!((l - r).abs() < 1e-6);
        }
    }

    #[test]
    fn ols_recovers_noiseless_coefficients(
        b0 in -5.0..5.0f64,
        b1 in -5.0..5.0f64,
        b2 in -5.0..5.0f64,
        xs in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 8..30),
    ) {
        // Skip degenerate designs where x1 and x2 are (nearly) collinear.
        let x1: Vec<f64> = xs.iter().map(|p| p.0).collect();
        let x2: Vec<f64> = xs.iter().map(|p| p.1).collect();
        if let Some(r) = teem_linreg::corr::pearson(&x1, &x2) {
            prop_assume!(r.abs() < 0.95);
        } else {
            prop_assume!(false);
        }
        let var1 = x1.iter().map(|v| v * v).sum::<f64>();
        let var2 = x2.iter().map(|v| v * v).sum::<f64>();
        prop_assume!(var1 > 1.0 && var2 > 1.0);

        let y: Vec<f64> = xs.iter().map(|(a, b)| b0 + b1 * a + b2 * b).collect();
        let mut d = Dataset::new("y");
        d.push_predictor("x1", x1);
        d.push_predictor("x2", x2);
        d.set_response(y);
        let fit = d.fit().expect("well-conditioned design");
        let c = fit.coefficients();
        prop_assert!((c[0].estimate - b0).abs() < 1e-5, "b0: {} vs {b0}", c[0].estimate);
        prop_assert!((c[1].estimate - b1).abs() < 1e-5, "b1: {} vs {b1}", c[1].estimate);
        prop_assert!((c[2].estimate - b2).abs() < 1e-5, "b2: {} vs {b2}", c[2].estimate);
    }

    #[test]
    fn residuals_orthogonal_to_fitted(
        xs in proptest::collection::vec((-10.0..10.0f64, -1.0..1.0f64), 10..40),
    ) {
        // OLS residuals are orthogonal to the column space; in particular
        // they sum to ~0 (intercept column) and are uncorrelated with x.
        let x: Vec<f64> = xs.iter().map(|p| p.0).collect();
        let noise: Vec<f64> = xs.iter().map(|p| p.1).collect();
        let spread = x.iter().map(|v| v * v).sum::<f64>();
        prop_assume!(spread > 1.0);
        let y: Vec<f64> = x.iter().zip(noise.iter()).map(|(a, n)| 1.0 + 0.5 * a + n).collect();
        let mut d = Dataset::new("y");
        d.push_predictor("x", x.clone());
        d.set_response(y);
        let fit = d.fit().expect("fits");
        let scale = fit.residuals().iter().map(|e| e.abs()).fold(0.0_f64, f64::max).max(1.0);
        let sum: f64 = fit.residuals().iter().sum();
        prop_assert!(sum.abs() < 1e-7 * scale * xs.len() as f64, "sum={sum}");
        let dot: f64 = fit.residuals().iter().zip(x.iter()).map(|(e, v)| e * v).sum();
        prop_assert!(dot.abs() < 1e-6 * scale * spread.sqrt() * xs.len() as f64, "dot={dot}");
    }

    #[test]
    fn r_squared_in_unit_interval(
        xs in proptest::collection::vec((-10.0..10.0f64, -3.0..3.0f64), 8..30),
    ) {
        let x: Vec<f64> = xs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = xs.iter().map(|(a, n)| 2.0 * a + n).collect();
        let spread = {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            x.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
        };
        prop_assume!(spread > 1.0);
        let yvar = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
        };
        prop_assume!(yvar > 1e-6);
        let mut d = Dataset::new("y");
        d.push_predictor("x", x);
        d.set_response(y);
        let fit = d.fit().expect("fits");
        prop_assert!(fit.r_squared() >= -1e-12 && fit.r_squared() <= 1.0 + 1e-12,
            "R2 = {}", fit.r_squared());
        prop_assert!(fit.adj_r_squared() <= fit.r_squared() + 1e-12);
    }

    #[test]
    fn inc_beta_monotone_in_x(a in 0.5..10.0f64, b in 0.5..10.0f64, x1 in 0.01..0.99f64, dx in 0.001..0.3f64) {
        let x2 = (x1 + dx).min(0.999);
        let i1 = inc_beta(a, b, x1);
        let i2 = inc_beta(a, b, x2);
        prop_assert!(i2 >= i1 - 1e-12, "I decreasing: {i1} -> {i2}");
        prop_assert!((0.0..=1.0).contains(&i1));
    }

    #[test]
    fn t_p_value_valid_and_monotone(t in 0.0..30.0f64, df in 1.0..100.0f64) {
        let p = t_two_sided_p(t, df);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        let p2 = t_two_sided_p(t + 1.0, df);
        prop_assert!(p2 <= p + 1e-12);
    }

    #[test]
    fn f_p_value_valid_and_monotone(f in 0.0..100.0f64, d1 in 1.0..20.0f64, d2 in 1.0..50.0f64) {
        let p = f_upper_p(f, d1, d2);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        let p2 = f_upper_p(f + 1.0, d1, d2);
        prop_assert!(p2 <= p + 1e-12);
    }

    #[test]
    fn quantile_is_bounded_and_monotone(
        mut xs in proptest::collection::vec(-100.0..100.0f64, 1..50),
        p1 in 0.0..1.0f64,
        dp in 0.0..0.5f64,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p2 = (p1 + dp).min(1.0);
        let q1 = quantile(&xs, p1).expect("non-empty");
        let q2 = quantile(&xs, p2).expect("non-empty");
        prop_assert!(q1 >= xs[0] - 1e-12 && q1 <= xs[xs.len() - 1] + 1e-12);
        prop_assert!(q2 >= q1 - 1e-12);
    }

    #[test]
    fn five_num_is_ordered(xs in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
        let f = FiveNum::of(&xs).expect("non-empty");
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
    }
}
