//! # teem-dse
//!
//! Design-space exploration substrate for the TEEM reproduction: the
//! paper's design points (CPU mapping × cluster frequencies × CPU/GPU
//! partition), their enumeration via equations (1) and (2), the diverse
//! 10 368-point sample of §III-A.1, fast analytic and full-simulation
//! evaluation (§III-A.2), and EEMP-style per-application lookup tables
//! whose byte footprint feeds the §V-D memory experiment.
//!
//! # Examples
//!
//! ```
//! use teem_dse::{enumerate, sample};
//!
//! // Equation (1): 24 CPU mappings on the 4+4 Exynos 5422.
//! assert_eq!(enumerate::mcpu_count(4, 4), 24);
//! // Equation (2): 28 560 frequency-annotated design points.
//! assert_eq!(enumerate::mdp_count(4, 19, 4, 13, 7), 28_560);
//! // The evaluated subset.
//! assert_eq!(sample::diverse_sample().len(), 10_368);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod design_point;
pub mod enumerate;
pub mod evaluate;
mod lut;
pub mod sample;

pub use design_point::{DesignPoint, DesignPointEval};
pub use lut::DesignPointLut;
