//! Design points: a CPU mapping, per-cluster frequencies and a CPU/GPU
//! work partition — the unit of the paper's offline design-space
//! exploration (§III-A.1).

use std::fmt;
use teem_soc::{ClusterFreqs, CpuMapping, MHz};
use teem_workload::Partition;

/// One design point of the paper's space: mapping × frequencies ×
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// CPU cores used (`xL+yB`).
    pub mapping: CpuMapping,
    /// Cluster frequency setting.
    pub freqs: ClusterFreqs,
    /// Work-item split.
    pub partition: Partition,
}

impl DesignPoint {
    /// A convenient maximum-performance point for a mapping: all clusters
    /// at the XU4 maxima, even partition.
    pub fn max_for(mapping: CpuMapping) -> DesignPoint {
        DesignPoint {
            mapping,
            freqs: ClusterFreqs {
                big: MHz(2000),
                little: MHz(1400),
                gpu: MHz(600),
            },
            partition: Partition::even(),
        }
    }

    /// The bytes an EEMP-style lookup table spends per stored design
    /// point: mapping (2×u8), three frequencies (3×u16), partition (u16)
    /// plus the two stored metrics the selection needs at runtime
    /// (predicted ET and energy as f32) — 18 bytes (§V-D accounting).
    pub const STORED_BYTES: usize = 2 + 3 * 2 + 2 + 2 * 4;
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {}/{}/{} p={}",
            self.mapping, self.freqs.big, self.freqs.little, self.freqs.gpu, self.partition
        )
    }
}

/// Measured (or predicted) metrics of one design point for one
/// application — the columns of the paper's evaluation table
/// (§III-A.2): execution time, average and peak temperature, and energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPointEval {
    /// Execution time, seconds.
    pub et_s: f64,
    /// Average of the hottest sensor over the run, °C.
    pub avg_temp_c: f64,
    /// Peak of the hottest sensor over the run, °C.
    pub peak_temp_c: f64,
    /// Wall energy, joules.
    pub energy_j: f64,
}

impl DesignPointEval {
    /// `true` when the point meets a performance constraint `treq` and a
    /// average-temperature constraint `at` (the paper's user
    /// requirement).
    pub fn meets(&self, treq_s: f64, at_c: f64) -> bool {
        self.et_s <= treq_s && self.avg_temp_c <= at_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        let dp = DesignPoint::max_for(CpuMapping::new(2, 3));
        let s = dp.to_string();
        assert!(s.contains("2L+3B"));
        assert!(s.contains("2000 MHz"));
        assert!(s.contains("1024/2048"));
    }

    #[test]
    fn stored_bytes_is_18() {
        assert_eq!(DesignPoint::STORED_BYTES, 18);
    }

    #[test]
    fn meets_checks_both_constraints() {
        let e = DesignPointEval {
            et_s: 40.0,
            avg_temp_c: 84.0,
            peak_temp_c: 88.0,
            energy_j: 400.0,
        };
        assert!(e.meets(45.0, 85.0));
        assert!(!e.meets(39.0, 85.0));
        assert!(!e.meets(45.0, 83.0));
    }
}
