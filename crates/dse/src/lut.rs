//! EEMP-style per-application design-point lookup tables.
//!
//! The EEMP baseline [15] stores, for each application, a table of
//! evaluated design points (128 per application in the paper's §V-D
//! memory accounting) and selects at runtime the minimum-energy point
//! meeting the performance constraint. TEEM replaces the whole table
//! with a fitted model + `ET_GPU` — the 98.8 % memory saving of §V-D.

use crate::design_point::{DesignPoint, DesignPointEval};
use std::fmt;

/// A per-application table of evaluated design points.
#[derive(Debug, Clone)]
pub struct DesignPointLut {
    app: String,
    entries: Vec<(DesignPoint, DesignPointEval)>,
}

impl DesignPointLut {
    /// The entry count the paper attributes to EEMP per application.
    pub const EEMP_ENTRIES: usize = 128;

    /// Creates a LUT from evaluated points.
    pub fn new(app: impl Into<String>, entries: Vec<(DesignPoint, DesignPointEval)>) -> Self {
        DesignPointLut {
            app: app.into(),
            entries,
        }
    }

    /// Application name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, (DesignPoint, DesignPointEval)> {
        self.entries.iter()
    }

    /// EEMP's runtime selection: the minimum-energy entry with
    /// `ET <= treq`. Ties broken by lower energy then lower ET. Returns
    /// `None` when no entry meets the constraint.
    ///
    /// NaN metrics (a replayed journal canonicalises non-finite values
    /// to NaN) sort after every finite value under `total_cmp`, so a
    /// poisoned entry is never selected while any finite candidate
    /// exists — and never panics the selector.
    pub fn min_energy_within(&self, treq_s: f64) -> Option<&(DesignPoint, DesignPointEval)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.et_s <= treq_s)
            .min_by(|a, b| {
                a.1.energy_j
                    .total_cmp(&b.1.energy_j)
                    .then(a.1.et_s.total_cmp(&b.1.et_s))
            })
    }

    /// The fastest entry (fallback when no entry meets the constraint).
    /// NaN ETs sort last (`total_cmp`), so they lose to any finite ET.
    pub fn fastest(&self) -> Option<&(DesignPoint, DesignPointEval)> {
        self.entries
            .iter()
            .min_by(|a, b| a.1.et_s.total_cmp(&b.1.et_s))
    }

    /// Bytes this table occupies in the §V-D accounting:
    /// `len() * DesignPoint::STORED_BYTES`.
    pub fn stored_bytes(&self) -> usize {
        self.len() * DesignPoint::STORED_BYTES
    }
}

impl fmt::Display for DesignPointLut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT[{}: {} entries, {} B]",
            self.app,
            self.len(),
            self.stored_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teem_soc::{ClusterFreqs, CpuMapping, MHz};
    use teem_workload::Partition;

    fn entry(et: f64, energy: f64) -> (DesignPoint, DesignPointEval) {
        (
            DesignPoint {
                mapping: CpuMapping::new(2, 2),
                freqs: ClusterFreqs {
                    big: MHz(1000),
                    little: MHz(1000),
                    gpu: MHz(420),
                },
                partition: Partition::even(),
            },
            DesignPointEval {
                et_s: et,
                avg_temp_c: 80.0,
                peak_temp_c: 85.0,
                energy_j: energy,
            },
        )
    }

    #[test]
    fn min_energy_selection_respects_constraint() {
        let lut = DesignPointLut::new(
            "CV",
            vec![entry(30.0, 500.0), entry(40.0, 300.0), entry(60.0, 200.0)],
        );
        // With TREQ=45 the 60s/200J point is excluded.
        let (_, e) = lut.min_energy_within(45.0).unwrap();
        assert_eq!(e.energy_j, 300.0);
        // With a loose TREQ the cheapest wins.
        let (_, e) = lut.min_energy_within(100.0).unwrap();
        assert_eq!(e.energy_j, 200.0);
        // Impossible TREQ.
        assert!(lut.min_energy_within(10.0).is_none());
    }

    #[test]
    fn fastest_fallback() {
        let lut = DesignPointLut::new("CV", vec![entry(30.0, 500.0), entry(40.0, 300.0)]);
        assert_eq!(lut.fastest().unwrap().1.et_s, 30.0);
        let empty = DesignPointLut::new("CV", vec![]);
        assert!(empty.fastest().is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn nan_metrics_never_panic_and_never_beat_finite_entries() {
        // PR 5 canonicalises non-finite journal metrics to NaN, so a
        // LUT rebuilt from a replayed journal can carry NaN cells; the
        // selector must tolerate them (total_cmp), not panic.
        let lut = DesignPointLut::new(
            "CV",
            vec![
                entry(30.0, f64::NAN), // poisoned energy
                entry(40.0, 300.0),
                entry(f64::NAN, 100.0), // poisoned ET: excluded by the constraint filter
            ],
        );
        let (_, e) = lut.min_energy_within(45.0).expect("finite entry wins");
        assert_eq!(e.energy_j, 300.0, "NaN energy sorts after finite");
        assert_eq!(
            lut.fastest().unwrap().1.et_s,
            30.0,
            "NaN ET sorts after finite"
        );

        // All-NaN tables still select *something* rather than panicking.
        let poisoned = DesignPointLut::new("CV", vec![entry(f64::NAN, f64::NAN)]);
        assert!(poisoned.fastest().is_some());
        assert!(
            poisoned.min_energy_within(45.0).is_none(),
            "NaN ET fails the constraint"
        );
    }

    #[test]
    fn byte_accounting_matches_paper_scale() {
        let entries: Vec<_> = (0..DesignPointLut::EEMP_ENTRIES)
            .map(|i| entry(30.0 + i as f64, 400.0))
            .collect();
        let lut = DesignPointLut::new("CV", entries);
        assert_eq!(lut.len(), 128);
        assert_eq!(lut.stored_bytes(), 128 * 18);
        assert!(lut.to_string().contains("128 entries"));
    }
}
