//! Design-point evaluation (§III-A.2): given an application and a design
//! point, produce execution time, average/peak temperature and energy.
//!
//! Two evaluators are provided:
//!
//! * [`predict`] — a fast analytic evaluation combining the timing model
//!   of eq. (3), the cluster power model and the thermal network's
//!   steady state. This is what makes sweeping thousands of design
//!   points tractable, exactly as the paper's offline phase needs.
//!   It assumes no reactive throttling (valid for the sub-trip operating
//!   points the offline phase cares about).
//! * [`simulate`] — a full engine run with the frequencies pinned
//!   (userspace governor) and the stock thermal zone armed. Slower,
//!   captures transients and throttling; used for the regression
//!   observation set and for validating `predict`.

use crate::design_point::{DesignPoint, DesignPointEval};
use teem_governors::Userspace;
use teem_soc::sensors::{BIG_CORE_OFFSETS_C, CORE_HOTSPOT_C_PER_W};
use teem_soc::{perf, Board, RunSpec, Simulation};
use teem_workload::{App, KernelCharacteristics};

/// Hottest big-core sensor offset (core-6 in board numbering).
fn max_big_offset() -> f64 {
    BIG_CORE_OFFSETS_C
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Per-core power of an active big core at this operating point (dynamic
/// share plus its slice of the cluster leakage) — the hotspot driver the
/// per-core TMU sensors see.
fn big_core_power(
    board: &Board,
    chars: &KernelCharacteristics,
    dp: &DesignPoint,
    cpu_busy: bool,
    big_node_c: f64,
) -> f64 {
    let active = dp.mapping.big;
    if active == 0 {
        return 0.0;
    }
    let volts = board.big_opps.volts_at(dp.freqs.big);
    let util = if cpu_busy { 1.0 } else { 0.03 };
    let dyn_core = board
        .big_power
        .dynamic_w(volts, dp.freqs.big.as_hz(), 1, util, chars.activity);
    let leak_core = board.big_power.leakage_w(volts, big_node_c, active) / f64::from(active);
    dyn_core + leak_core
}

/// Analytic evaluation of a design point: eq. (3) timing + steady-state
/// thermals + piecewise energy.
///
/// The run has two phases: both devices busy until the faster one
/// finishes its share, then the slower device alone. Power and
/// steady-state temperatures are evaluated per phase with one
/// leakage/temperature fixed-point iteration.
pub fn predict(board: &Board, chars: &KernelCharacteristics, dp: &DesignPoint) -> DesignPointEval {
    let wg = dp.partition.cpu_fraction();
    let items = chars.items as f64;
    let cpu_share_et = if wg > 0.0 && !dp.mapping.is_empty() {
        wg * items / perf::cpu_rate(chars, dp.mapping, dp.freqs.big, dp.freqs.little).max(1e-9)
    } else if wg > 0.0 {
        // CPU work assigned but no CPU cores: never finishes.
        f64::INFINITY
    } else {
        0.0
    };
    let gpu_share_et = (1.0 - wg) * items / perf::gpu_rate(chars, dp.freqs.gpu).max(1e-9);
    let et = cpu_share_et.max(gpu_share_et);
    if !et.is_finite() {
        return DesignPointEval {
            et_s: f64::INFINITY,
            avg_temp_c: f64::INFINITY,
            peak_temp_c: f64::INFINITY,
            energy_j: f64::INFINITY,
        };
    }
    let overlap = cpu_share_et.min(gpu_share_et);
    let tail = et - overlap;
    let cpu_busy_tail = cpu_share_et > gpu_share_et;

    // Phase A: both busy; phase B: only the slower device.
    let (pa, ta) = phase(board, chars, dp, true, true);
    let (pb, tb) = if tail > 0.0 {
        phase(board, chars, dp, cpu_busy_tail, !cpu_busy_tail)
    } else {
        (pa.clone(), ta.clone())
    };

    let energy = sum(&pa) * overlap + sum(&pb) * tail;
    let hot = |temps: &Vec<f64>, cpu_busy: bool| -> f64 {
        let node = temps[board.nodes.big];
        let hotspot = CORE_HOTSPOT_C_PER_W * big_core_power(board, chars, dp, cpu_busy, node);
        (node + hotspot + max_big_offset()).max(temps[board.nodes.gpu])
    };
    let (hot_a, hot_b) = (hot(&ta, true), hot(&tb, cpu_busy_tail));
    let avg_temp = if et > 0.0 {
        (hot_a * overlap + hot_b * tail) / et
    } else {
        hot_a
    };
    DesignPointEval {
        et_s: et,
        avg_temp_c: avg_temp,
        peak_temp_c: hot_a.max(hot_b),
        energy_j: energy,
    }
}

/// Ceiling for the leakage/temperature fixed point. Operating points
/// whose self-consistent temperature exceeds this are thermally unstable
/// (leakage feedback outruns conduction — a real phenomenon for 4×A15 at
/// 2 GHz); on hardware the reactive trip catches them, and the offline
/// phase reports them capped here.
pub const RUNAWAY_CAP_C: f64 = 125.0;

/// Power vector and steady-state temperatures for one phase, solved as a
/// damped leakage/temperature fixed point (leakage depends on
/// temperature, temperature on power).
fn phase(
    board: &Board,
    chars: &KernelCharacteristics,
    dp: &DesignPoint,
    cpu_busy: bool,
    gpu_busy: bool,
) -> (Vec<f64>, Vec<f64>) {
    let ambient = board.thermal.ambient_c();
    let mut temps = vec![70.0; board.thermal.len()];
    let mut powers = vec![0.0; board.thermal.len()];
    for _ in 0..40 {
        powers = node_powers(board, chars, dp, cpu_busy, gpu_busy, &temps);
        let next = board.thermal.steady_state(&powers);
        let mut delta = 0.0_f64;
        for (t, n) in temps.iter_mut().zip(next.iter()) {
            // 0.5 damping keeps thermally-unstable points from
            // oscillating/diverging; the cap marks them as runaway.
            let target = (0.5 * *t + 0.5 * n).clamp(ambient, RUNAWAY_CAP_C);
            delta = delta.max((target - *t).abs());
            *t = target;
        }
        if delta < 0.01 {
            break;
        }
    }
    (powers, temps)
}

fn node_powers(
    board: &Board,
    chars: &KernelCharacteristics,
    dp: &DesignPoint,
    cpu_busy: bool,
    gpu_busy: bool,
    temps: &[f64],
) -> Vec<f64> {
    let mut p = vec![0.0; board.thermal.len()];
    let m = dp.mapping;
    let big_util = if cpu_busy && m.big > 0 { 1.0 } else { 0.03 };
    p[board.nodes.big] = board.big_power.total_w(
        board.big_opps.volts_at(dp.freqs.big),
        dp.freqs.big.as_hz(),
        m.big,
        big_util,
        chars.activity,
        temps[board.nodes.big],
    );
    let little_active = m.little.max(1);
    let little_util = if cpu_busy && m.little > 0 { 1.0 } else { 0.08 };
    p[board.nodes.little] = board.little_power.total_w(
        board.little_opps.volts_at(dp.freqs.little),
        dp.freqs.little.as_hz(),
        little_active,
        little_util,
        chars.activity,
        temps[board.nodes.little],
    );
    let gpu_util = if gpu_busy { 1.0 } else { 0.02 };
    p[board.nodes.gpu] = board.gpu_power.total_w(
        board.gpu_opps.volts_at(dp.freqs.gpu),
        dp.freqs.gpu.as_hz(),
        6,
        gpu_util,
        chars.activity,
        temps[board.nodes.gpu],
    );
    p[board.nodes.board] = board.board_base_w;
    p
}

fn sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// Full-engine evaluation: pins the design point's frequencies with a
/// userspace governor and runs the application to completion on a fresh
/// XU4 board (stock thermal zone armed).
pub fn simulate(app: App, dp: &DesignPoint) -> DesignPointEval {
    let spec = RunSpec {
        app,
        mapping: dp.mapping,
        partition: dp.partition,
        initial: dp.freqs,
    };
    let mut sim = Simulation::new(Board::odroid_xu4_ideal(), spec);
    let result = sim.run(&mut Userspace::new(dp.freqs));
    DesignPointEval {
        et_s: result.summary.execution_time_s,
        avg_temp_c: result.summary.avg_temp_c,
        peak_temp_c: result.summary.peak_temp_c,
        energy_j: result.summary.energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teem_soc::{ClusterFreqs, CpuMapping, MHz};
    use teem_workload::Partition;

    fn dp(big: u32, partition: Partition) -> DesignPoint {
        DesignPoint {
            mapping: CpuMapping::new(2, 3),
            freqs: ClusterFreqs {
                big: MHz(big),
                little: MHz(1400),
                gpu: MHz(600),
            },
            partition,
        }
    }

    #[test]
    fn predict_is_finite_and_sane() {
        let board = Board::odroid_xu4_ideal();
        let chars = App::Covariance.characteristics();
        let e = predict(&board, &chars, &dp(1400, Partition::even()));
        assert!(e.et_s > 5.0 && e.et_s < 300.0, "ET {}", e.et_s);
        assert!(e.energy_j > 20.0);
        assert!(e.peak_temp_c >= e.avg_temp_c);
        assert!((40.0..120.0).contains(&e.avg_temp_c));
    }

    #[test]
    fn predict_matches_simulation_for_cool_points() {
        // For sub-trip design points the analytic model should land near
        // the engine (within ~15% on ET/energy; temperature within a few
        // degrees of the run average).
        let board = Board::odroid_xu4_ideal();
        let chars = App::Covariance.characteristics();
        let point = dp(1200, Partition::even());
        let a = predict(&board, &chars, &point);
        let s = simulate(App::Covariance, &point);
        assert!(
            (a.et_s - s.et_s).abs() / s.et_s < 0.15,
            "ET {} vs {}",
            a.et_s,
            s.et_s
        );
        assert!(
            (a.energy_j - s.energy_j).abs() / s.energy_j < 0.20,
            "E {} vs {}",
            a.energy_j,
            s.energy_j
        );
        assert!(
            (a.peak_temp_c - s.peak_temp_c).abs() < 8.0,
            "peakT {} vs {}",
            a.peak_temp_c,
            s.peak_temp_c
        );
    }

    #[test]
    fn higher_frequency_predicts_faster_hotter() {
        let board = Board::odroid_xu4_ideal();
        let chars = App::Covariance.characteristics();
        let lo = predict(&board, &chars, &dp(800, Partition::even()));
        let hi = predict(&board, &chars, &dp(2000, Partition::even()));
        assert!(hi.et_s < lo.et_s);
        assert!(hi.peak_temp_c > lo.peak_temp_c);
    }

    #[test]
    fn gpu_only_ignores_cpu_mapping_speed() {
        let board = Board::odroid_xu4_ideal();
        let chars = App::Covariance.characteristics();
        let a = predict(
            &board,
            &chars,
            &DesignPoint {
                mapping: CpuMapping::new(2, 3),
                freqs: ClusterFreqs {
                    big: MHz(2000),
                    little: MHz(1400),
                    gpu: MHz(600),
                },
                partition: Partition::all_gpu(),
            },
        );
        let b = predict(
            &board,
            &chars,
            &DesignPoint {
                mapping: CpuMapping::new(2, 3),
                freqs: ClusterFreqs {
                    big: MHz(200),
                    little: MHz(1400),
                    gpu: MHz(600),
                },
                partition: Partition::all_gpu(),
            },
        );
        // GPU-only ET does not depend on the big frequency.
        assert!((a.et_s - b.et_s).abs() < 1e-9);
        // But energy does (idle big burns less at 200 MHz).
        assert!(b.energy_j < a.energy_j);
    }

    #[test]
    fn impossible_point_is_infinite() {
        let board = Board::odroid_xu4_ideal();
        let chars = App::Covariance.characteristics();
        let e = predict(
            &board,
            &chars,
            &DesignPoint {
                mapping: CpuMapping::new(0, 0),
                freqs: ClusterFreqs {
                    big: MHz(2000),
                    little: MHz(1400),
                    gpu: MHz(600),
                },
                partition: Partition::even(), // CPU work but no CPU cores
            },
        );
        assert!(e.et_s.is_infinite());
    }
}
