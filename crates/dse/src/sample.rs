//! The diverse design-point subset the paper actually evaluates.
//!
//! "Specifically, 10,368 design points that cover a diverse mapping
//! represented as used big and LITTLE cores and various partitions were
//! used" (§III-A.1). The paper does not list the subset; we reconstruct a
//! grid with exactly that cardinality:
//!
//! ```text
//! 16 combination mappings × 9 partitions × (6 big × 4 LITTLE × 3 GPU
//! frequencies) = 10 368
//! ```
//!
//! covering every `xL+yB` combination, the full partition grid, and
//! frequency settings spread across each cluster's range.

use crate::design_point::DesignPoint;
use crate::enumerate::combo_mappings;
use teem_soc::{ClusterFreqs, MHz};
use teem_workload::Partition;

/// The big-cluster frequencies of the diverse sample (6 of 19).
pub const SAMPLE_BIG_MHZ: [u32; 6] = [800, 1100, 1400, 1600, 1800, 2000];

/// The LITTLE-cluster frequencies of the diverse sample (4 of 13).
pub const SAMPLE_LITTLE_MHZ: [u32; 4] = [600, 1000, 1200, 1400];

/// The GPU frequencies of the diverse sample (3 of 7).
pub const SAMPLE_GPU_MHZ: [u32; 3] = [350, 480, 600];

/// Generates the 10 368-point diverse sample.
pub fn diverse_sample() -> Vec<DesignPoint> {
    let mut out = Vec::with_capacity(10_368);
    for mapping in combo_mappings() {
        for partition in Partition::offline_grid() {
            for &fb in &SAMPLE_BIG_MHZ {
                for &fl in &SAMPLE_LITTLE_MHZ {
                    for &fg in &SAMPLE_GPU_MHZ {
                        out.push(DesignPoint {
                            mapping,
                            freqs: ClusterFreqs {
                                big: MHz(fb),
                                little: MHz(fl),
                                gpu: MHz(fg),
                            },
                            partition,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sample_has_exactly_10368_points() {
        assert_eq!(diverse_sample().len(), 10_368);
    }

    #[test]
    fn sample_covers_all_combo_mappings_and_partitions() {
        let sample = diverse_sample();
        let mappings: HashSet<_> = sample.iter().map(|d| d.mapping).collect();
        assert_eq!(mappings.len(), 16);
        let partitions: HashSet<_> = sample.iter().map(|d| d.partition).collect();
        assert_eq!(partitions.len(), 9);
    }

    #[test]
    fn sample_frequencies_are_valid_opps() {
        let board = teem_soc::Board::odroid_xu4_ideal();
        for dp in diverse_sample().iter().take(500) {
            assert!(board.big_opps.exact(dp.freqs.big).is_some(), "{dp}");
            assert!(board.little_opps.exact(dp.freqs.little).is_some(), "{dp}");
            assert!(board.gpu_opps.exact(dp.freqs.gpu).is_some(), "{dp}");
        }
    }

    #[test]
    fn sample_is_a_subset_of_the_full_space_shape() {
        // Every sampled point uses a combination mapping and the offline
        // partition grid — i.e. it lies within the 257 040-point space.
        for dp in diverse_sample().iter().step_by(97) {
            assert!(dp.mapping.little >= 1 && dp.mapping.big >= 1);
            assert_eq!(u32::from(dp.partition.grains()) % 256, 0);
        }
    }
}
