//! Enumeration of the paper's design space — equations (1) and (2).
//!
//! * Eq. (1): `MCPU = Nb + NL + Nb·NL` mappings on the CPU clusters
//!   (big-only, LITTLE-only, and combinations) — 24 for the 4+4 Exynos.
//! * Eq. (2): `MDP = {(Nb·Fb) + (NL·FL) + (Nb·Fb·NL·FL)} × {1·Fg}` design
//!   points including frequency settings — 28 560 with (Fb, FL, Fg) =
//!   (19, 13, 7).
//! * With the nine work-item partitions of §III-A.1 the full space is
//!   257 040 points, of which the paper evaluates a diverse 10 368-point
//!   subset (see [`crate::sample`]).

use crate::design_point::DesignPoint;
use teem_soc::{Board, ClusterFreqs, CpuMapping, MHz};
use teem_workload::Partition;

/// Eq. (1): number of CPU mappings for `nb` big and `nl` LITTLE cores.
pub fn mcpu_count(nb: u32, nl: u32) -> u64 {
    nb as u64 + nl as u64 + nb as u64 * nl as u64
}

/// Eq. (2): number of frequency-annotated design points for cluster sizes
/// `(nb, nl)` and OPP-table sizes `(fb, fl, fg)`.
pub fn mdp_count(nb: u64, fb: u64, nl: u64, fl: u64, fg: u64) -> u64 {
    (nb * fb + nl * fl + nb * fb * nl * fl) * fg
}

/// The 24 CPU mappings of eq. (1) on the Exynos 5422: `1B..4B`,
/// `1L..4L`, and every `xL+yB` combination.
pub fn all_mappings() -> Vec<CpuMapping> {
    let mut out = Vec::with_capacity(24);
    for big in 1..=4 {
        out.push(CpuMapping::new(0, big));
    }
    for little in 1..=4 {
        out.push(CpuMapping::new(little, 0));
    }
    for little in 1..=4 {
        for big in 1..=4 {
            out.push(CpuMapping::new(little, big));
        }
    }
    out
}

/// The 16 combination mappings (`1L+1B` … `4L+4B`) the paper's regression
/// dataset varies over ("varying the mapping from 1L+1B to 4L+4B").
pub fn combo_mappings() -> Vec<CpuMapping> {
    let mut out = Vec::with_capacity(16);
    for little in 1..=4 {
        for big in 1..=4 {
            out.push(CpuMapping::new(little, big));
        }
    }
    out
}

/// Lazily enumerates the full frequency-annotated design space of eq. (2)
/// × the nine partitions (257 040 points for the XU4). The iterator is
/// cheap; materialising all points is the caller's choice.
pub fn full_space(board: &Board) -> impl Iterator<Item = DesignPoint> + '_ {
    // Eq. (2) structure: big-only terms (Nb × Fb), LITTLE-only terms
    // (NL × FL), and combination terms (Nb × Fb × NL × FL), all crossed
    // with the GPU's Fg settings and the 9 partitions.
    let big_opps: Vec<MHz> = board.big_opps.iter().map(|o| o.freq).collect();
    let little_opps: Vec<MHz> = board.little_opps.iter().map(|o| o.freq).collect();
    let gpu_opps: Vec<MHz> = board.gpu_opps.iter().map(|o| o.freq).collect();
    let partitions = Partition::offline_grid();

    // Build the (mapping, big freq, little freq) triples per eq. (2).
    let mut cpu_terms: Vec<(CpuMapping, MHz, MHz)> = Vec::new();
    for big in 1..=4u32 {
        for &fb in &big_opps {
            cpu_terms.push((CpuMapping::new(0, big), fb, little_opps[0]));
        }
    }
    for little in 1..=4u32 {
        for &fl in &little_opps {
            cpu_terms.push((CpuMapping::new(little, 0), big_opps[0], fl));
        }
    }
    for big in 1..=4u32 {
        for &fb in &big_opps {
            for little in 1..=4u32 {
                for &fl in &little_opps {
                    cpu_terms.push((CpuMapping::new(little, big), fb, fl));
                }
            }
        }
    }

    cpu_terms.into_iter().flat_map(move |(mapping, fb, fl)| {
        let gpu_opps = gpu_opps.clone();
        gpu_opps.into_iter().flat_map(move |fg| {
            partitions.into_iter().map(move |partition| DesignPoint {
                mapping,
                freqs: ClusterFreqs {
                    big: fb,
                    little: fl,
                    gpu: fg,
                },
                partition,
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equation_1_gives_24_for_the_xu4() {
        assert_eq!(mcpu_count(4, 4), 24);
        assert_eq!(all_mappings().len(), 24);
        // Degenerate platforms.
        assert_eq!(mcpu_count(1, 0), 1);
        assert_eq!(mcpu_count(2, 3), 11);
    }

    #[test]
    fn equation_2_gives_28560_for_the_xu4() {
        // (4*19 + 4*13 + 4*19*4*13) * (1*7) = 4080 * 7 = 28 560.
        assert_eq!(mdp_count(4, 19, 4, 13, 7), 28_560);
    }

    #[test]
    fn full_space_has_257040_points() {
        // 28 560 x 9 partitions, as the paper states.
        let board = teem_soc::Board::odroid_xu4_ideal();
        assert_eq!(full_space(&board).count(), 257_040);
    }

    #[test]
    fn mappings_are_distinct_and_valid() {
        let all = all_mappings();
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 24);
        assert!(all.iter().all(|m| m.total_cores() > 0));
        assert_eq!(combo_mappings().len(), 16);
        assert!(combo_mappings().iter().all(|m| m.little > 0 && m.big > 0));
    }

    #[test]
    fn full_space_points_are_unique() {
        let board = teem_soc::Board::odroid_xu4_ideal();
        let mut seen = HashSet::new();
        let mut n = 0u64;
        for dp in full_space(&board) {
            // Hash a compact encoding to keep memory bounded.
            let key = (
                dp.mapping.little,
                dp.mapping.big,
                dp.freqs.big.0,
                dp.freqs.little.0,
                dp.freqs.gpu.0,
                dp.partition.grains(),
            );
            assert!(seen.insert(key), "duplicate point {dp}");
            n += 1;
        }
        assert_eq!(n, 257_040);
    }
}
