//! Property-based tests for design-space evaluation: the analytic
//! evaluator must respect the obvious physical orderings everywhere in
//! the design space.

use proptest::prelude::*;
use teem_dse::{evaluate, DesignPoint};
use teem_soc::{Board, ClusterFreqs, CpuMapping, MHz};
use teem_workload::{App, Partition};

fn dp(little: u32, big: u32, f_big: u32, grains: u16) -> DesignPoint {
    DesignPoint {
        mapping: CpuMapping::new(little, big),
        freqs: ClusterFreqs {
            big: MHz(f_big),
            little: MHz(1400),
            gpu: MHz(600),
        },
        partition: Partition::from_grains(grains),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn more_cpu_frequency_is_never_slower(
        little in 1u32..=4,
        big in 1u32..=4,
        f1 in 4u32..=18,
        grains in 256u16..=2048,
    ) {
        let board = Board::odroid_xu4_ideal();
        let chars = App::Covariance.characteristics();
        let lo = evaluate::predict(&board, &chars, &dp(little, big, f1 * 100 + 200, grains));
        let hi = evaluate::predict(&board, &chars, &dp(little, big, 2000, grains));
        prop_assert!(hi.et_s <= lo.et_s + 1e-9, "{} > {}", hi.et_s, lo.et_s);
    }

    #[test]
    fn evaluation_metrics_are_internally_consistent(
        little in 1u32..=4,
        big in 1u32..=4,
        f in 2u32..=18,
        grains in 0u16..=2048,
        app_idx in 0usize..8,
    ) {
        let board = Board::odroid_xu4_ideal();
        let app = App::paper_eight()[app_idx];
        let chars = app.characteristics();
        let e = evaluate::predict(&board, &chars, &dp(little, big, f * 100 + 200, grains));
        prop_assert!(e.et_s > 0.0);
        prop_assert!(e.energy_j > 0.0);
        prop_assert!(e.peak_temp_c >= e.avg_temp_c - 1e-9);
        prop_assert!(e.avg_temp_c >= board.thermal.ambient_c());
        // Energy is bounded by a sane power envelope: 0.5 W idle floor;
        // the ceiling allows for thermally-runaway corner points (capped
        // at 125 C), where 4 big cores can leak ~20 W on top of ~10 W
        // dynamic+GPU+board.
        let avg_power = e.energy_j / e.et_s;
        prop_assert!((0.5..40.0).contains(&avg_power), "avg power {avg_power}");
    }

    #[test]
    fn gpu_only_points_are_mapping_invariant(
        l1 in 0u32..=4, b1 in 0u32..=4,
        l2 in 0u32..=4, b2 in 0u32..=4,
    ) {
        let board = Board::odroid_xu4_ideal();
        let chars = App::Gemm.characteristics();
        let mk = |l, b| DesignPoint {
            mapping: CpuMapping::new(l, b),
            freqs: ClusterFreqs { big: MHz(1000), little: MHz(1000), gpu: MHz(600) },
            partition: Partition::all_gpu(),
        };
        let a = evaluate::predict(&board, &chars, &mk(l1, b1));
        let c = evaluate::predict(&board, &chars, &mk(l2, b2));
        // GPU-only ET does not depend on which CPU cores are nominally
        // mapped.
        prop_assert!((a.et_s - c.et_s).abs() < 1e-9);
    }

    #[test]
    fn simulation_agrees_with_prediction_for_cool_points(
        grains in 512u16..=1536,
    ) {
        // One randomised partition per case; sub-trip frequency so the
        // analytic (no-throttling) assumption holds.
        let board = Board::odroid_xu4_ideal();
        let chars = App::Covariance.characteristics();
        let point = dp(2, 2, 1200, grains);
        let a = evaluate::predict(&board, &chars, &point);
        let s = evaluate::simulate(App::Covariance, &point);
        prop_assert!((a.et_s - s.et_s).abs() / s.et_s < 0.15,
            "ET {} vs {}", a.et_s, s.et_s);
        prop_assert!((a.energy_j - s.energy_j).abs() / s.energy_j < 0.25,
            "E {} vs {}", a.energy_j, s.energy_j);
    }
}

#[test]
fn lut_selection_is_pareto_consistent() {
    // For any deadline, loosening it never increases the selected energy.
    use teem_dse::DesignPointLut;
    let board = Board::odroid_xu4_ideal();
    let chars = App::Syrk.characteristics();
    let entries: Vec<(DesignPoint, teem_dse::DesignPointEval)> = (1..=4u32)
        .flat_map(|b| (1..=8u16).map(move |e| (b, e)))
        .map(|(b, e)| {
            let point = dp(2, b, 2000, e * 256);
            (point, evaluate::predict(&board, &chars, &point))
        })
        .collect();
    let lut = DesignPointLut::new("SR", entries);
    let mut last_energy = f64::INFINITY;
    for treq in [20.0, 30.0, 40.0, 60.0, 100.0] {
        if let Some((_, e)) = lut.min_energy_within(treq) {
            assert!(e.energy_j <= last_energy + 1e-9);
            last_energy = e.energy_j;
        }
    }
}
