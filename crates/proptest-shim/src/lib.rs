//! A minimal, fully deterministic drop-in replacement for the subset of
//! the `proptest` crate this workspace uses.
//!
//! The container building this workspace has no access to crates.io, so
//! the property-test substrate is provided locally. The shim keeps the
//! familiar surface — the [`proptest!`] macro, [`Strategy`] with
//! [`Strategy::prop_map`], `proptest::collection::vec`, `prop_assert!`,
//! `prop_assume!` and [`ProptestConfig`] — on top of a seeded SplitMix64
//! generator, so every test run explores the same deterministic sample
//! of the input space. There is no shrinking: a failing case panics with
//! the generated arguments available through the assertion message.

#![warn(rust_2018_idioms)]

/// Deterministic pseudo-random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name keeps independent tests on independent
        // streams while staying reproducible across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_strategies!(u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as a vector-length specification: an exact length
    /// or a range of lengths.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker returned (via `Err`) by [`prop_assume!`] to discard a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseRejected;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, CaseRejected,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::CaseRejected);
        }
    };
}

/// Declares property tests: each `fn` runs `cases` times with fresh
/// deterministic inputs drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            // The matched attributes include the caller's own `#[test]`
            // (this workspace always writes it, as real proptest allows),
            // plus any `#[ignore]`/`#[should_panic]` — re-emitted
            // verbatim so none are silently dropped.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(100).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    // Bind the generated arguments first (their types come
                    // straight from the strategies), then run the property
                    // in a zero-argument closure so `prop_assume!` can
                    // discard the case via an early return. The lints are
                    // artefacts of the expansion (the closure exists only
                    // for the early return; a panicking body makes the
                    // trailing Ok unreachable).
                    let ($($arg,)*) =
                        ($($crate::Strategy::generate(&($strategy), &mut rng),)*);
                    #[allow(clippy::redundant_closure_call, unreachable_code)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::CaseRejected> {
                        $body
                        Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted > 0,
                    "property {} rejected every generated case",
                    stringify!($name)
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($arg in $strategy),* ) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        let mut c = TestRng::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5u16..=9).generate(&mut rng);
            assert!((5..=9).contains(&w));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::new(2);
        let strat = collection::vec(0.0..1.0f64, 3..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((3..6).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_accepts_and_rejects(x in 0u32..100, pair in (0.0..1.0f64, 0.0..1.0f64)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13);
            prop_assert!(pair.0 >= 0.0 && pair.1 < 1.0);
        }

        // Attribute forwarding: `#[ignore]` must survive expansion (the
        // harness lists this as ignored instead of running it).
        #[test]
        #[ignore = "runs only with --ignored; exercises attribute forwarding"]
        fn ignored_property_is_not_run(x in 0u32..10) {
            prop_assert!(x < 10);
        }

        #[test]
        #[should_panic(expected = "forwarded")]
        fn should_panic_property_is_forwarded(_x in 0u32..10) {
            panic!("forwarded");
        }
    }
}
